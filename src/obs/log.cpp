#include "obs/log.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>

namespace asynth::obs {

namespace {

constexpr std::size_t ring_capacity = 256;

struct logger_state {
    std::atomic<std::uint8_t> level{static_cast<std::uint8_t>(log_level::warn)};
    std::mutex mutex;  ///< sink writes, sink swaps and the ring
    std::FILE* sink = stderr;
    bool owns_sink = false;
    std::vector<std::string> ring;  ///< circular once full; ring_next = oldest
    std::size_t ring_next = 0;
};

logger_state& state() {
    static logger_state s;
    return s;
}

std::atomic<std::uint64_t> g_thread_seq{0};

std::string& thread_name_slot() {
    thread_local std::string name;
    return name;
}

/// The calling thread's log track name; lazily "thread-<n>" until
/// obs::name_thread gives it a real one.
const std::string& log_thread_name() {
    std::string& n = thread_name_slot();
    if (n.empty())
        n = "thread-" + std::to_string(g_thread_seq.fetch_add(1, std::memory_order_relaxed));
    return n;
}

std::string& req_id_slot() {
    thread_local std::string id;
    return id;
}

void json_escape(std::string& out, std::string_view s) {
    for (char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
}

void append_number(std::string& out, const char* fmt, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, fmt, v);
    out += buf;
}

}  // namespace

const char* level_name(log_level l) noexcept {
    switch (l) {
        case log_level::debug: return "debug";
        case log_level::info: return "info";
        case log_level::warn: return "warn";
        case log_level::error: return "error";
        case log_level::off: return "off";
    }
    return "?";
}

std::optional<log_level> level_from_name(std::string_view s) noexcept {
    if (s == "debug") return log_level::debug;
    if (s == "info") return log_level::info;
    if (s == "warn") return log_level::warn;
    if (s == "error") return log_level::error;
    if (s == "off") return log_level::off;
    return std::nullopt;
}

void set_log_level(log_level l) noexcept {
    state().level.store(static_cast<std::uint8_t>(l), std::memory_order_relaxed);
}

log_level get_log_level() noexcept {
    return static_cast<log_level>(state().level.load(std::memory_order_relaxed));
}

bool log_enabled(log_level l) noexcept {
    return l != log_level::off &&
           static_cast<std::uint8_t>(l) >= state().level.load(std::memory_order_relaxed);
}

bool open_log_file(const std::string& path, std::string& error) {
    std::FILE* f = std::fopen(path.c_str(), "a");
    if (!f) {
        error = path + ": " + std::strerror(errno);
        return false;
    }
    auto& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.owns_sink && s.sink) std::fclose(s.sink);
    s.sink = f;
    s.owns_sink = true;
    return true;
}

std::size_t log_ring_capacity() noexcept { return ring_capacity; }

std::vector<std::string> recent_log_lines() {
    auto& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<std::string> out;
    out.reserve(s.ring.size());
    if (s.ring.size() < ring_capacity) {
        out = s.ring;
    } else {
        // Full ring: ring_next is the oldest entry.
        for (std::size_t i = 0; i < ring_capacity; ++i)
            out.push_back(s.ring[(s.ring_next + i) % ring_capacity]);
    }
    return out;
}

void dump_recent_log(std::FILE* to) {
    for (const auto& line : recent_log_lines()) {
        std::fwrite(line.data(), 1, line.size(), to);
        std::fputc('\n', to);
    }
    std::fflush(to);
}

log_event::log_event(log_level lvl, std::string_view event) {
    if (!log_enabled(lvl)) return;
    emitting_ = true;
    const double wall = std::chrono::duration<double>(
                            std::chrono::system_clock::now().time_since_epoch())
                            .count();
    const double mono_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now().time_since_epoch())
                               .count();
    line_.reserve(160);
    line_ += "{\"ts\":";
    append_number(line_, "%.6f", wall);
    line_ += ",\"mono_ms\":";
    append_number(line_, "%.3f", mono_ms);
    line_ += ",\"level\":\"";
    line_ += level_name(lvl);
    line_ += "\",\"thread\":\"";
    json_escape(line_, log_thread_name());
    line_ += "\",\"event\":\"";
    json_escape(line_, event);
    line_ += '"';
    if (const std::string& req = req_id_slot(); !req.empty()) {
        line_ += ",\"req_id\":\"";
        json_escape(line_, req);
        line_ += '"';
    }
}

log_event::~log_event() {
    if (!emitting_) return;
    line_ += '}';
    auto& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    // Ring first (without the newline: entries are self-contained objects).
    if (s.ring.size() < ring_capacity) {
        s.ring.push_back(line_);
    } else {
        s.ring[s.ring_next] = line_;
        s.ring_next = (s.ring_next + 1) % ring_capacity;
    }
    // One fwrite for the whole line: the no-torn-lines guarantee.
    line_ += '\n';
    std::fwrite(line_.data(), 1, line_.size(), s.sink);
    std::fflush(s.sink);
}

log_event& log_event::field(std::string_view key, std::string_view value) {
    if (!emitting_) return *this;
    line_ += ",\"";
    json_escape(line_, key);
    line_ += "\":\"";
    json_escape(line_, value);
    line_ += '"';
    return *this;
}

log_event& log_event::field(std::string_view key, std::uint64_t v) {
    if (!emitting_) return *this;
    line_ += ",\"";
    json_escape(line_, key);
    line_ += "\":";
    line_ += std::to_string(v);
    return *this;
}

log_event& log_event::field(std::string_view key, std::int64_t v) {
    if (!emitting_) return *this;
    line_ += ",\"";
    json_escape(line_, key);
    line_ += "\":";
    line_ += std::to_string(v);
    return *this;
}

log_event& log_event::field(std::string_view key, double v) {
    if (!emitting_) return *this;
    line_ += ",\"";
    json_escape(line_, key);
    line_ += "\":";
    append_number(line_, "%.6g", v);
    return *this;
}

log_event& log_event::field(std::string_view key, bool v) {
    if (!emitting_) return *this;
    line_ += ",\"";
    json_escape(line_, key);
    line_ += "\":";
    line_ += v ? "true" : "false";
    return *this;
}

log_context::log_context(std::string_view req_id) {
    if (req_id.empty()) return;
    bound_ = true;
    prev_ = std::move(req_id_slot());
    req_id_slot() = std::string(req_id);
}

log_context::~log_context() {
    if (bound_) req_id_slot() = std::move(prev_);
}

const std::string& current_req_id() noexcept { return req_id_slot(); }

namespace detail {

void set_log_thread_name(std::string_view name) { thread_name_slot() = std::string(name); }

}  // namespace detail

}  // namespace asynth::obs
