// Low-overhead tracing: a process-global `trace_session` gates RAII `span`
// guards that record (name, category, key/value args, start, duration) into
// per-thread lock-free buffers, collected on session stop and exported as
// Chrome trace-event JSON (chrome://tracing / Perfetto loadable) or a
// self-rendered text flamegraph.
//
// Cost model (the acceptance bar is < 3% batch-sweep overhead with tracing
// *disabled*): a span constructed while no session is active costs one
// relaxed atomic load plus one steady_clock read -- no allocation, no string
// copy, no locking.  Spans are therefore placed at stage/level granularity
// (pipeline stages, explore levels, service requests), never inside
// microsecond-scale move-scoring loops.
//
// Concurrency design: each thread owns a buffer of completed span events --
// a fixed table of atomically-published chunk pointers, so the collector
// never races a growing std::vector.  Only the owning thread writes events;
// it publishes progress with a release store of `used` that the collector
// reads with acquire.  Sessions are numbered by a global epoch: starting a
// session bumps the epoch, and a thread's first append under a new epoch
// lazily resets its buffer (owner-side, so no cross-thread reset races).
// Spans capture (enabled, epoch) at construction; a span that straddles a
// stop() or a session change simply drops its event -- benign by design.
// One session may be active at a time (enforced); buffers live until
// process exit (freed with the global tracer state, so sanitizer leak
// passes stay clean).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace asynth::obs {

/// One key/value span argument.  Numeric values are rendered unquoted in the
/// Chrome JSON so Perfetto can aggregate them.
struct trace_arg {
    std::string key;
    std::string value;
    bool numeric = false;
};

/// A completed span as collected from the per-thread buffers.
struct trace_event {
    std::string name;
    std::string category;
    std::uint64_t tid = 0;       ///< stable per-thread index (registration order)
    std::uint64_t start_ns = 0;  ///< steady_clock, absolute
    std::uint64_t dur_ns = 0;
    std::vector<trace_arg> args;
};

/// Give the calling thread a human-readable track name ("worker-3") in trace
/// exports and structured log lines (obs/log.hpp).  Idempotent; call once
/// near thread start.
void name_thread(std::string_view name);

namespace detail {
/// Test-only override of the per-thread per-session span cap (0 restores the
/// built-in 1M cap).  Exists so the overflow-drop accounting can be pinned
/// without recording a million spans under the sanitizer job.
void set_trace_buffer_cap_for_testing(std::size_t max_events);
}  // namespace detail

/// One tracing window: start() arms span recording process-wide, stop()
/// disarms it and collects every thread's events into this object.  Exactly
/// one session may be armed at a time; starting a second throws.  The dtor
/// stops an armed session.  Collected events persist until the session is
/// destroyed or restarted, so exports can be rendered repeatedly.
class trace_session {
public:
    trace_session() = default;
    ~trace_session();
    trace_session(const trace_session&) = delete;
    trace_session& operator=(const trace_session&) = delete;

    void start();
    void stop();
    [[nodiscard]] bool armed() const noexcept { return armed_; }

    /// Collected events, globally sorted by (tid, start).  Valid after stop().
    [[nodiscard]] const std::vector<trace_event>& events() const noexcept { return events_; }
    /// Spans discarded because a thread hit its buffer cap during this session.
    [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

    /// Chrome trace-event JSON: "M" thread_name metadata plus matched "B"/"E"
    /// pairs with per-thread monotone microsecond timestamps.
    [[nodiscard]] std::string chrome_json() const;
    /// Compact text flamegraph: per-thread nested span tree with durations,
    /// percent-of-track bars, and args.
    [[nodiscard]] std::string flamegraph() const;

private:
    bool armed_ = false;
    std::uint64_t epoch_ = 0;
    std::uint64_t start_ns_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<trace_event> events_;
    std::vector<std::pair<std::uint64_t, std::string>> thread_names_;  ///< (tid, name)
};

/// RAII span guard.  Construction while no session is armed costs one
/// relaxed load + one clock read; `seconds()` works either way, so callers
/// can use a span as their stopwatch (the pipeline's stage timings do).
class span {
public:
    explicit span(std::string_view name, std::string_view category = {});
    ~span();
    span(const span&) = delete;
    span& operator=(const span&) = delete;

    /// Attach a key/value argument (no-ops when recording is off).
    void arg(std::string_view key, std::string_view value);
    void arg(std::string_view key, std::uint64_t v);
    void arg(std::string_view key, std::int64_t v);
    void arg(std::string_view key, double v);

    /// Elapsed wall time since construction, in seconds.
    [[nodiscard]] double seconds() const;

private:
    bool recording_ = false;
    std::uint64_t epoch_ = 0;
    std::uint64_t start_ns_ = 0;
    trace_event ev_;  ///< staged name/category/args; only filled when recording
};

}  // namespace asynth::obs
