// Content-addressed on-disk result store: synthesis outcomes keyed by *what
// was asked*, shared between processes and across runs.
//
// The key of a record is a 128-bit hash of
//
//     options_fingerprint(opt) + '\0' + canonical astg text of the spec
//
// where the canonical text is write_astg() output (a write∘parse fixpoint
// since PR 1, so a spec read from a file and the same spec re-written keep
// one identity) and the fingerprint enumerates every *result-affecting*
// pipeline option.  Knobs that are provably result-neutral -- the search
// engine, the minimizer mode, every jobs count -- are deliberately excluded,
// so a sweep with `--engine reference` warms the cache for `--engine
// incremental` and vice versa.  The search-quality dial (and its anytime
// deadline) is result-AFFECTING and therefore fingerprinted: exact, bounded
// and anytime runs occupy distinct keys, so approximate results never
// poison exact cache entries.
//
// Disk layout (DIR is the `--store` argument):
//
//   DIR/format                   "asynth-store v1\n" -- store-level version
//   DIR/lock                     flock() target guarding concurrent access
//   DIR/objects/<hh>/<hex30>.rec one record per key, git-style 2-char fanout
//
// Crash-safety and concurrency invariants (docs/SERVICE.md has the full
// argument):
//
//  * writes go to a unique temp file in the same directory, are flushed, and
//    are rename(2)d over the final path -- readers observe either the old
//    complete record or the new complete record, never a torn one, and a
//    writer killed at any instruction leaves at worst a stale temp file;
//  * concurrent access is additionally serialised through flock() on
//    DIR/lock (shared for get, exclusive for put), so the store is safe for
//    many readers + many writers across threads *and* processes;
//  * every get re-verifies the record's schema version and 128-bit payload
//    checksum (store/record.hpp); truncation, bit-flips and version skew
//    degrade to a miss -- the caller re-synthesises and put() heals the
//    entry -- and are counted apart in store_stats.
//
// A store that cannot be opened (unwritable directory, foreign format file)
// is *disabled*, not fatal: every get misses, every put is dropped, and
// message() says why -- callers keep working at cold-cache speed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "pipeline/pipeline.hpp"
#include "store/record.hpp"
#include "util/hash.hpp"

namespace asynth::store {

/// Content address of one (spec, options) pair.
struct store_key {
    hash128 h;
    /// 32-char lowercase hex form (the on-disk name).
    [[nodiscard]] std::string hex() const;
    [[nodiscard]] bool operator==(const store_key&) const noexcept = default;
};

/// Canonical text enumerating every result-affecting field of @p opt, in a
/// fixed order with round-trip double formatting.  Two option structs
/// fingerprint equally iff run_pipeline() provably computes the same result.
[[nodiscard]] std::string options_fingerprint(const pipeline_options& opt);

/// The content address of @p canonical_astg under @p fingerprint.
[[nodiscard]] store_key key_of(std::string_view canonical_astg, std::string_view fingerprint);

/// Convenience: canonicalise @p spec (write_astg) and fingerprint @p opt.
[[nodiscard]] store_key key_of(const stg& spec, const pipeline_options& opt);

/// Monotone counters of one store handle (process-local, thread-safe).
struct store_stats {
    std::uint64_t hits = 0;          ///< get() returned a record
    std::uint64_t misses = 0;        ///< no record on disk
    std::uint64_t corrupt = 0;       ///< record failed length/checksum (also a miss)
    std::uint64_t version_skew = 0;  ///< record of another schema (also a miss)
    std::uint64_t writes = 0;        ///< put() committed a record
    std::uint64_t write_errors = 0;  ///< put() dropped (I/O error or disabled)
    [[nodiscard]] std::uint64_t lookups() const {
        return hits + misses + corrupt + version_skew;
    }
};

/// Handle to one store directory.  Thread-safe: get/put open their own file
/// descriptors and the counters are atomic; share one handle freely across a
/// pool (the batch sweep and the service both do).  Handles are cheap to
/// copy; copies share one counter block.
class result_store {
public:
    /// A disabled store: get always misses, put always drops.
    result_store();

    /// Opens (creating if needed) the store at @p dir.  Never throws: on
    /// failure the returned handle is disabled and message() explains.
    [[nodiscard]] static result_store open(const std::string& dir);

    [[nodiscard]] bool enabled() const { return enabled_; }
    [[nodiscard]] const std::string& message() const { return message_; }
    [[nodiscard]] const std::string& dir() const { return dir_; }

    /// Looks @p key up.  Absent, corrupt and version-skewed records all
    /// return nullopt (and bump the matching counter) -- a miss is always a
    /// safe answer, the caller just re-synthesises.
    [[nodiscard]] std::optional<stored_record> get(const store_key& key) const;

    /// Commits @p rec under @p key (temp file + atomic rename, under the
    /// exclusive file lock).  Returns false when the write was dropped.
    bool put(const store_key& key, const stored_record& rec) const;

    [[nodiscard]] store_stats stats() const;

private:
    struct counters {
        std::atomic<std::uint64_t> hits{0}, misses{0}, corrupt{0}, skew{0}, writes{0},
            write_errors{0};
        std::atomic<std::uint64_t> tmp_serial{0};  ///< unique temp-file suffix
    };

    [[nodiscard]] std::string object_path(const store_key& key) const;

    std::string dir_;
    std::string message_;
    bool enabled_ = false;
    /// Heap block so handles stay copyable (atomics are not); copies share it.
    std::shared_ptr<counters> c_;
};

}  // namespace asynth::store
