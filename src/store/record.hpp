// Schema-versioned, self-checking serialisation of one synthesis outcome --
// the unit the content-addressed result store (store/result_store.hpp) keeps
// on disk and the service returns on a cache hit.
//
// A stored_record is a *projection* of pipeline_result: everything a caller
// of `asynth batch` or the synthesis service gets to see (verdict, reduced-SG
// statistics, the synthesised netlist, per-stage timings, the recovered STG
// text) without the in-memory artefacts (state graphs, covers) that only the
// producing process can hold.  record_of() projects; the batch and service
// layers turn records back into their own report rows.
//
// The wire format is a three-line-header text block:
//
//   asynth-record v<schema> <payload_bytes> <payload_hash_hex32>
//   <payload...>
//
// where the payload is `key value` lines for scalars and `key <nbytes>\n<raw
// bytes>\n` blocks for free-form strings (messages, equations, astg text) --
// length-prefixed so no escaping is needed and parsing cannot be confused by
// content.  parse_record() verifies the schema, the length and the 128-bit
// payload hash before touching the payload, and returns a typed status so the
// store can tell version skew (re-synthesise, keep counting) from corruption
// (re-synthesise, count separately) without ever throwing: a truncated,
// bit-flipped or future-schema record is a *miss*, never a crash.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/pipeline.hpp"

namespace asynth::store {

/// Bump when the payload layout changes incompatibly.  Readers reject any
/// other version (degrading to a store miss), so a mixed-version fleet only
/// loses cache efficiency, never correctness.
/// v2: emitted netlists (verilog/cmodel) + implementation-verification
/// outcome added alongside the equations.
/// v3: search-quality dial -- the quality the producing search ran at and
/// the bound gap it reported, so approximate results stay labelled on disk.
inline constexpr int record_schema_version = 3;

/// One synthesised signal implementation, as stored.
struct stored_impl {
    std::string name;      ///< signal name in the encoded SG
    std::string kind;      ///< impl_kind name ("wire", "gc", ...)
    double area = 0.0;     ///< area units
    std::string equation;  ///< printable equation of the chosen style
};

/// The on-disk projection of a pipeline_result (see file comment).
struct stored_record {
    /// Fingerprint text of the producing pipeline_options (debugging aid:
    /// `get` trusts the content address, it does not re-derive this).
    std::string fingerprint;
    bool completed = false;
    bool synthesized = false;
    bool csc_solved = false;
    std::string failed_stage;  ///< first failing stage name ("" when completed)
    std::string message;       ///< diagnostic or CSC verdict ("" when clean)
    std::size_t states = 0;
    std::size_t arcs = 0;
    std::size_t signals = 0;
    std::size_t explored = 0;
    std::size_t csc_signals = 0;
    std::size_t literals = 0;
    double initial_cost = 0.0;
    double reduced_cost = 0.0;
    double area = -1.0;
    double cycle = 0.0;
    double seconds = 0.0;  ///< producing pipeline's wall-clock total
    /// Per-stage wall-clock of the producing run, (stage name, seconds).
    std::vector<std::pair<std::string, double>> timings;
    std::vector<stored_impl> netlist;  ///< synthesised circuit ("" when none)
    std::string recovered_astg;        ///< recovered STG text ("" when not run)
    std::string verilog;               ///< emitted Verilog ("" when no circuit)
    std::string cmodel;                ///< emitted C model ("" when no circuit)
    bool impl_checked = false;         ///< verify stage ran and agreed
    std::size_t impl_states = 0;       ///< states the emulation walk visited
    /// Quality the producing search ran at ("exact"/"bounded"/"anytime") and
    /// the bound gap it reported (v3; see search_result::bound_gap).
    std::string quality = "exact";
    double bound_gap = 0.0;
};

/// Projects a pipeline outcome into its storable form.  @p fingerprint is
/// the producing options' fingerprint (store/result_store.hpp).
[[nodiscard]] stored_record record_of(const pipeline_result& r, std::string fingerprint);

/// Serialises header + payload (the exact bytes put() writes to disk).
[[nodiscard]] std::string serialize_record(const stored_record& rec);

/// Typed deserialisation outcome, so callers can count failure modes apart.
enum class parse_status : uint8_t {
    ok,            ///< record parsed and checksum verified
    corrupt,       ///< bad header/length/hash/payload -- treat as a miss
    version_skew,  ///< intact header of an unsupported schema -- treat as a miss
};

/// Parses bytes previously produced by serialize_record().  Never throws;
/// @p out is only written on parse_status::ok.
[[nodiscard]] parse_status parse_record(std::string_view text, stored_record& out);

}  // namespace asynth::store
