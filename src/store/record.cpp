#include "store/record.hpp"

#include <cstdio>
#include <cstring>

#include "petri/astg_io.hpp"
#include "util/hash.hpp"

namespace asynth::store {

namespace {

const char* impl_kind_name(impl_kind k) {
    switch (k) {
        case impl_kind::constant: return "constant";
        case impl_kind::wire: return "wire";
        case impl_kind::inverter: return "inverter";
        case impl_kind::complex_gate: return "complex";
        case impl_kind::gc_element: return "gc";
    }
    return "?";
}

void emit_size(std::string& out, const char* key, std::size_t v) {
    out += key;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
}

void emit_bool(std::string& out, const char* key, bool v) {
    out += key;
    out += v ? " 1\n" : " 0\n";
}

void emit_double(std::string& out, const char* key, double v) {
    char buf[48];
    // %.17g round-trips every finite double, so hit records reproduce the
    // producing run's numbers exactly.
    std::snprintf(buf, sizeof buf, "%s %.17g\n", key, v);
    out += buf;
}

/// Length-prefixed string block: `key <nbytes>\n<raw bytes>\n`.  No escaping
/// needed, so messages/equations/astg text can contain anything.
void emit_str(std::string& out, const char* key, const std::string& v) {
    out += key;
    out += ' ';
    out += std::to_string(v.size());
    out += '\n';
    out += v;
    out += '\n';
}

/// Line-oriented payload reader with explicit bounds checks everywhere; every
/// helper reports failure instead of reading past the end.
struct reader {
    std::string_view text;
    std::size_t pos = 0;
    bool failed = false;

    [[nodiscard]] bool done() const { return pos >= text.size(); }

    /// Next line without its '\n' (the payload always ends in one).
    std::string_view line() {
        const auto nl = text.find('\n', pos);
        if (nl == std::string_view::npos) {
            failed = true;
            return {};
        }
        auto out = text.substr(pos, nl - pos);
        pos = nl + 1;
        return out;
    }

    /// Exactly @p n raw bytes followed by '\n'.
    std::string_view raw(std::size_t n) {
        if (n > text.size() - pos || text.size() - pos - n < 1 || text[pos + n] != '\n') {
            failed = true;
            return {};
        }
        auto out = text.substr(pos, n);
        pos += n + 1;
        return out;
    }
};

[[nodiscard]] bool parse_u64(std::string_view s, uint64_t& out) {
    if (s.empty() || s.size() > 20) return false;
    out = 0;
    for (char c : s) {
        if (c < '0' || c > '9') return false;
        out = out * 10 + static_cast<uint64_t>(c - '0');
    }
    return true;
}

[[nodiscard]] bool parse_f64(std::string_view s, double& out) {
    char buf[64];
    if (s.empty() || s.size() >= sizeof buf) return false;
    std::memcpy(buf, s.data(), s.size());
    buf[s.size()] = '\0';
    char* end = nullptr;
    out = std::strtod(buf, &end);
    return end == buf + s.size();
}

[[nodiscard]] std::string hex32(const hash128& h) {
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx", static_cast<unsigned long long>(h.hi),
                  static_cast<unsigned long long>(h.lo));
    return buf;
}

}  // namespace

stored_record record_of(const pipeline_result& r, std::string fingerprint) {
    stored_record rec;
    rec.fingerprint = std::move(fingerprint);
    rec.completed = r.completed;
    rec.synthesized = r.synthesized();
    rec.csc_solved = r.csc.solved;
    if (r.failed) rec.failed_stage = stage_name(*r.failed);
    if (!r.completed)
        rec.message = r.message;
    else if (!r.csc.solved)
        rec.message = r.csc.message;
    if (r.base_sg) {
        rec.states = r.base_sg->state_count();
        rec.arcs = r.base_sg->arc_count();
        rec.signals = r.base_sg->signals().size();
    }
    rec.explored = r.search.explored;
    rec.csc_signals = r.csc.signals_inserted;
    rec.literals = r.reduced_cost.literals;
    rec.initial_cost = r.initial_cost.value;
    rec.reduced_cost = r.reduced_cost.value;
    rec.area = r.area();
    rec.cycle = r.cycle();
    rec.seconds = r.total_seconds;
    for (const auto& t : r.timings) rec.timings.emplace_back(stage_name(t.stage), t.seconds);
    if (r.synth.ok) {
        const auto& sigs = r.csc.graph.signals();
        for (const auto& impl : r.synth.ckt.impls) {
            stored_impl si;
            si.name = impl.signal < sigs.size() ? sigs[impl.signal].name
                                                : std::to_string(impl.signal);
            si.kind = impl_kind_name(impl.kind);
            si.area = impl.area;
            si.equation = impl.equation;
            rec.netlist.push_back(std::move(si));
        }
    }
    if (r.recovered.ok) rec.recovered_astg = write_astg(r.recovered.net);
    rec.verilog = r.verilog;
    rec.cmodel = r.cmodel;
    rec.impl_checked = r.impl_check.ok;
    rec.impl_states = r.impl_check.states_visited;
    rec.quality = quality_name(r.search.quality);
    rec.bound_gap = r.search.bound_gap;
    return rec;
}

std::string serialize_record(const stored_record& rec) {
    std::string p;
    emit_str(p, "fingerprint", rec.fingerprint);
    emit_bool(p, "completed", rec.completed);
    emit_bool(p, "synthesized", rec.synthesized);
    emit_bool(p, "csc_solved", rec.csc_solved);
    emit_str(p, "failed_stage", rec.failed_stage);
    emit_str(p, "message", rec.message);
    emit_size(p, "states", rec.states);
    emit_size(p, "arcs", rec.arcs);
    emit_size(p, "signals", rec.signals);
    emit_size(p, "explored", rec.explored);
    emit_size(p, "csc_signals", rec.csc_signals);
    emit_size(p, "literals", rec.literals);
    emit_double(p, "initial_cost", rec.initial_cost);
    emit_double(p, "reduced_cost", rec.reduced_cost);
    emit_double(p, "area", rec.area);
    emit_double(p, "cycle", rec.cycle);
    emit_double(p, "seconds", rec.seconds);
    for (const auto& [stage, seconds] : rec.timings) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "timing %s %.17g\n", stage.c_str(), seconds);
        p += buf;
    }
    for (const auto& impl : rec.netlist) {
        p += "impl ";
        p += impl.kind;
        char buf[48];
        std::snprintf(buf, sizeof buf, " %.17g\n", impl.area);
        p += buf;
        emit_str(p, "impl.name", impl.name);
        emit_str(p, "impl.eq", impl.equation);
    }
    emit_str(p, "astg", rec.recovered_astg);
    emit_str(p, "verilog", rec.verilog);
    emit_str(p, "cmodel", rec.cmodel);
    emit_bool(p, "impl_checked", rec.impl_checked);
    emit_size(p, "impl_states", rec.impl_states);
    emit_str(p, "quality", rec.quality);
    emit_double(p, "bound_gap", rec.bound_gap);

    std::string out = "asynth-record v" + std::to_string(record_schema_version) + " " +
                      std::to_string(p.size()) + " " + hex32(hash128_bytes(p.data(), p.size())) +
                      "\n";
    out += p;
    return out;
}

parse_status parse_record(std::string_view text, stored_record& out) {
    // ---- header: "asynth-record v<schema> <bytes> <hash32>\n" --------------
    constexpr std::string_view magic = "asynth-record v";
    const auto hdr_end = text.find('\n');
    if (hdr_end == std::string_view::npos || text.substr(0, magic.size()) != magic)
        return parse_status::corrupt;
    const std::string_view hdr = text.substr(magic.size(), hdr_end - magic.size());
    const auto sp1 = hdr.find(' ');
    const auto sp2 = sp1 == std::string_view::npos ? sp1 : hdr.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos) return parse_status::corrupt;
    uint64_t schema = 0, bytes = 0;
    if (!parse_u64(hdr.substr(0, sp1), schema)) return parse_status::corrupt;
    if (!parse_u64(hdr.substr(sp1 + 1, sp2 - sp1 - 1), bytes)) return parse_status::corrupt;
    const std::string_view want_hash = hdr.substr(sp2 + 1);
    // Version check precedes the integrity check: a future schema's payload
    // may legitimately hash differently than this reader expects.
    if (schema != static_cast<uint64_t>(record_schema_version)) return parse_status::version_skew;
    const std::string_view payload = text.substr(hdr_end + 1);
    if (payload.size() != bytes || want_hash.size() != 32) return parse_status::corrupt;
    if (hex32(hash128_bytes(payload.data(), payload.size())) != want_hash)
        return parse_status::corrupt;

    // ---- payload: hash-verified, but still parsed defensively --------------
    stored_record rec;
    reader rd{payload};
    auto read_str = [&](std::string_view rest) -> std::string {
        uint64_t n = 0;
        if (!parse_u64(rest, n)) {
            rd.failed = true;
            return {};
        }
        return std::string(rd.raw(n));
    };
    while (!rd.done() && !rd.failed) {
        const std::string_view ln = rd.line();
        if (rd.failed) break;
        const auto sp = ln.find(' ');
        if (sp == std::string_view::npos) {
            rd.failed = true;
            break;
        }
        const std::string_view key = ln.substr(0, sp);
        const std::string_view rest = ln.substr(sp + 1);
        uint64_t u = 0;
        double d = 0.0;
        auto want_u = [&] { return parse_u64(rest, u) || (rd.failed = true, false); };
        auto want_d = [&] { return parse_f64(rest, d) || (rd.failed = true, false); };
        if (key == "fingerprint") rec.fingerprint = read_str(rest);
        else if (key == "completed") rec.completed = rest == "1";
        else if (key == "synthesized") rec.synthesized = rest == "1";
        else if (key == "csc_solved") rec.csc_solved = rest == "1";
        else if (key == "failed_stage") rec.failed_stage = read_str(rest);
        else if (key == "message") rec.message = read_str(rest);
        else if (key == "states" && want_u()) rec.states = u;
        else if (key == "arcs" && want_u()) rec.arcs = u;
        else if (key == "signals" && want_u()) rec.signals = u;
        else if (key == "explored" && want_u()) rec.explored = u;
        else if (key == "csc_signals" && want_u()) rec.csc_signals = u;
        else if (key == "literals" && want_u()) rec.literals = u;
        else if (key == "initial_cost" && want_d()) rec.initial_cost = d;
        else if (key == "reduced_cost" && want_d()) rec.reduced_cost = d;
        else if (key == "area" && want_d()) rec.area = d;
        else if (key == "cycle" && want_d()) rec.cycle = d;
        else if (key == "seconds" && want_d()) rec.seconds = d;
        else if (key == "timing") {
            const auto sp3 = rest.find(' ');
            if (sp3 == std::string_view::npos || !parse_f64(rest.substr(sp3 + 1), d)) {
                rd.failed = true;
                break;
            }
            rec.timings.emplace_back(std::string(rest.substr(0, sp3)), d);
        } else if (key == "impl") {
            const auto sp3 = rest.find(' ');
            if (sp3 == std::string_view::npos || !parse_f64(rest.substr(sp3 + 1), d)) {
                rd.failed = true;
                break;
            }
            stored_impl si;
            si.kind = std::string(rest.substr(0, sp3));
            si.area = d;
            rec.netlist.push_back(std::move(si));
        } else if (key == "impl.name") {
            if (rec.netlist.empty()) rd.failed = true;
            else rec.netlist.back().name = read_str(rest);
        } else if (key == "impl.eq") {
            if (rec.netlist.empty()) rd.failed = true;
            else rec.netlist.back().equation = read_str(rest);
        } else if (key == "astg") {
            rec.recovered_astg = read_str(rest);
        } else if (key == "verilog") {
            rec.verilog = read_str(rest);
        } else if (key == "cmodel") {
            rec.cmodel = read_str(rest);
        } else if (key == "impl_checked") {
            rec.impl_checked = rest == "1";
        } else if (key == "impl_states" && want_u()) {
            rec.impl_states = u;
        } else if (key == "quality") {
            rec.quality = read_str(rest);
        } else if (key == "bound_gap" && want_d()) {
            rec.bound_gap = d;
        } else {
            rd.failed = true;  // unknown key within a matching schema
        }
    }
    if (rd.failed) return parse_status::corrupt;
    out = std::move(rec);
    return parse_status::ok;
}

}  // namespace asynth::store
