#include "store/result_store.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "petri/astg_io.hpp"

namespace asynth::store {

namespace {

/// Process-wide store counters (on top of the per-handle store_stats): every
/// handle in the process feeds the same series, which is what the daemon's
/// Prometheus exposition reports.
struct store_counters {
    obs::counter& hits;
    obs::counter& misses;
    obs::counter& heals;
    obs::counter& corrupt;
    obs::counter& writes;
};

store_counters& store_obs() {
    auto& reg = obs::registry::global();
    static store_counters c{
        reg.get_counter("asynth_store_hits_total", "Result-store lookups served from disk"),
        reg.get_counter("asynth_store_misses_total",
                        "Result-store lookups that required synthesis"),
        reg.get_counter("asynth_store_heals_total",
                        "Puts that replaced an existing (stale or corrupt) record"),
        reg.get_counter("asynth_store_corruptions_total",
                        "Lookups that found an unparsable record"),
        reg.get_counter("asynth_store_writes_total", "Records committed to the store"),
    };
    return c;
}

/// Store-level format line; bump only when the directory *layout* changes.
constexpr std::string_view store_format_line = "asynth-store v1\n";

void fp_double(std::string& out, const char* key, double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%s=%.17g;", key, v);
    out += buf;
}

void fp_size(std::string& out, const char* key, std::size_t v) {
    out += key;
    out += '=';
    out += std::to_string(v);
    out += ';';
}

void fp_bool(std::string& out, const char* key, bool v) {
    out += key;
    out += v ? "=1;" : "=0;";
}

[[nodiscard]] bool make_dir(const std::string& path) {
    return ::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST;
}

/// RAII flock() on the store's lock file.  A lock that cannot be taken
/// (missing file, EINTR storm) degrades to lock-free operation -- the
/// temp+rename protocol alone already guarantees readers never see torn
/// records; the flock only serialises writers and is best-effort.
struct file_lock {
    int fd = -1;
    file_lock(const std::string& path, int op) {
        fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
        if (fd >= 0 && ::flock(fd, op) != 0) {
            ::close(fd);
            fd = -1;
        }
    }
    ~file_lock() {
        if (fd >= 0) {
            ::flock(fd, LOCK_UN);
            ::close(fd);
        }
    }
    file_lock(const file_lock&) = delete;
    file_lock& operator=(const file_lock&) = delete;
};

/// Reads a whole file; nullopt when it does not exist or cannot be read.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad()) return std::nullopt;
    return std::move(text).str();
}

}  // namespace

std::string store_key::hex() const {
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx", static_cast<unsigned long long>(h.hi),
                  static_cast<unsigned long long>(h.lo));
    return buf;
}

std::string options_fingerprint(const pipeline_options& opt) {
    // v2: the verify knob joined the fingerprint (a verified record proves
    // strictly more than an unverified one, so they must never alias).
    // v3: the quality dial and its anytime deadline joined -- unlike
    // engine/minimizer they AFFECT the result, and an approximate record
    // must never be served for an exact request (or vice versa).
    std::string fp = "asynth-options v3;";
    // expand
    fp_size(fp, "phases", static_cast<std::size_t>(opt.expand.phases));
    fp_bool(fp, "chan_if", opt.expand.channel_interface);
    fp_size(fp, "max_states", opt.expand.max_states);
    // strategy + search.  engine/minimizer/jobs are EXCLUDED by contract:
    // they return bit-identical results (pinned corpus-wide in
    // tests/test_explore.cpp), so either engine may serve the other's cache.
    fp += "strategy=";
    fp += opt.strategy == reduction_strategy::none
              ? "none"
              : (opt.strategy == reduction_strategy::beam ? "beam" : "full");
    fp += ';';
    fp += "quality=";
    fp += quality_name(opt.search.quality);
    fp += ';';
    fp_size(fp, "deadline_ms", opt.search.deadline_ms);
    fp_size(fp, "frontier", opt.search.size_frontier);
    fp_size(fp, "max_levels", opt.search.max_levels);
    fp_double(fp, "w", opt.search.cost.w);
    fp_double(fp, "csc_weight", opt.search.cost.csc_weight);
    fp_size(fp, "min_passes", opt.search.cost.minimize_passes);
    fp += "keepconc=";
    for (const auto& [a, b] : opt.search.keep_concurrent) {
        fp += std::to_string(a.signal);
        fp += a.dir == edge::plus ? '+' : (a.dir == edge::minus ? '-' : '~');
        fp += std::to_string(b.signal);
        fp += b.dir == edge::plus ? '+' : (b.dir == edge::minus ? '-' : '~');
        fp += ',';
    }
    fp += ';';
    // csc
    fp_size(fp, "csc_signals", opt.csc.max_signals);
    fp_size(fp, "csc_beam", opt.csc.beam_width);
    // synth
    fp_bool(fp, "exact", opt.synth.exact);
    fp_double(fp, "lib_inv", opt.synth.lib.inverter);
    fp_double(fp, "lib_g2", opt.synth.lib.gate2);
    fp_double(fp, "lib_c", opt.synth.lib.celement);
    // perf + tail stages
    fp_bool(fp, "zero_wires", opt.zero_delay_wires);
    fp_bool(fp, "perf", opt.run_performance);
    fp_bool(fp, "recover", opt.recover_stg);
    fp_bool(fp, "verify", opt.verify_impl);
    fp_double(fp, "d_in", opt.delays.input_delay);
    fp_double(fp, "d_out", opt.delays.output_delay);
    fp_double(fp, "d_int", opt.delays.internal_delay);
    fp += "d_over=";
    for (const auto& [name, v] : opt.delays.overrides) {
        fp += name;
        fp += ':';
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g,", v);
        fp += buf;
    }
    fp += ';';
    return fp;
}

store_key key_of(std::string_view canonical_astg, std::string_view fingerprint) {
    std::string blob;
    blob.reserve(fingerprint.size() + 1 + canonical_astg.size());
    blob.append(fingerprint);
    blob.push_back('\0');
    blob.append(canonical_astg);
    return store_key{hash128_bytes(blob.data(), blob.size())};
}

store_key key_of(const stg& spec, const pipeline_options& opt) {
    return key_of(write_astg(spec), options_fingerprint(opt));
}

result_store::result_store() : c_(std::make_shared<counters>()) {}

result_store result_store::open(const std::string& dir) {
    result_store s;
    s.dir_ = dir;
    if (dir.empty()) {
        s.message_ = "store: empty directory name";
        return s;
    }
    if (!make_dir(dir) || !make_dir(dir + "/objects")) {
        s.message_ = "store: cannot create '" + dir + "': " + std::strerror(errno);
        return s;
    }
    // Store-level format check.  A foreign or future layout disables the
    // handle rather than guessing at the contents.
    const std::string format_path = dir + "/format";
    if (auto existing = read_file(format_path)) {
        if (*existing != store_format_line) {
            s.message_ = "store: '" + dir + "' has an unsupported format (" +
                         existing->substr(0, existing->find('\n')) + "); ignoring it";
            return s;
        }
    } else {
        const std::string tmp = format_path + ".tmp." + std::to_string(::getpid());
        std::ofstream out(tmp, std::ios::binary);
        out << store_format_line;
        out.close();
        if (!out || std::rename(tmp.c_str(), format_path.c_str()) != 0) {
            std::remove(tmp.c_str());
            s.message_ = "store: cannot initialise '" + dir + "'";
            return s;
        }
    }
    // The flock target; contents are irrelevant.
    const std::string lock_path = dir + "/lock";
    const int fd = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0666);
    if (fd < 0) {
        s.message_ = "store: cannot create lock file in '" + dir + "'";
        return s;
    }
    ::close(fd);
    s.enabled_ = true;
    return s;
}

std::string result_store::object_path(const store_key& key) const {
    const std::string hex = key.hex();
    return dir_ + "/objects/" + hex.substr(0, 2) + "/" + hex.substr(2) + ".rec";
}

std::optional<stored_record> result_store::get(const store_key& key) const {
    if (!enabled_) {
        c_->misses.fetch_add(1, std::memory_order_relaxed);
        store_obs().misses.add();
        return std::nullopt;
    }
    const file_lock lock(dir_ + "/lock", LOCK_SH);
    auto text = read_file(object_path(key));
    if (!text) {
        c_->misses.fetch_add(1, std::memory_order_relaxed);
        store_obs().misses.add();
        return std::nullopt;
    }
    stored_record rec;
    switch (parse_record(*text, rec)) {
        case parse_status::ok:
            c_->hits.fetch_add(1, std::memory_order_relaxed);
            store_obs().hits.add();
            return rec;
        case parse_status::version_skew:
            c_->skew.fetch_add(1, std::memory_order_relaxed);
            store_obs().misses.add();
            return std::nullopt;
        case parse_status::corrupt: break;
    }
    // Corrupt record: a miss.  The caller's re-synthesis + put() will rename
    // a fresh record over it, healing the entry in place.
    c_->corrupt.fetch_add(1, std::memory_order_relaxed);
    store_obs().corrupt.add();
    store_obs().misses.add();
    return std::nullopt;
}

bool result_store::put(const store_key& key, const stored_record& rec) const {
    if (!enabled_) {
        c_->write_errors.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    const std::string final_path = object_path(key);
    const std::string fanout = final_path.substr(0, final_path.find_last_of('/'));
    const std::string text = serialize_record(rec);
    // Unique temp name per (process, handle, call): concurrent writers of the
    // same key each rename their own complete file; last rename wins whole.
    const std::string tmp = fanout + "/.tmp-" + key.hex().substr(2) + "-" +
                            std::to_string(::getpid()) + "-" +
                            std::to_string(c_->tmp_serial.fetch_add(1, std::memory_order_relaxed));
    const file_lock lock(dir_ + "/lock", LOCK_EX);
    auto fail = [&] {
        std::remove(tmp.c_str());
        c_->write_errors.fetch_add(1, std::memory_order_relaxed);
        return false;
    };
    if (!make_dir(fanout)) return fail();
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0666);
    if (fd < 0) return fail();
    std::size_t off = 0;
    while (off < text.size()) {
        const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            return fail();
        }
        off += static_cast<std::size_t>(n);
    }
    // Flush data before the rename publishes the name: after a crash the
    // record is either absent or complete, never a named-but-empty file.
    // close() must run even when fsync fails, or a degraded disk leaks one
    // fd per dropped put.
    const bool flushed = ::fsync(fd) == 0;
    if (::close(fd) != 0 || !flushed) return fail();
    // A put over an existing object heals it in place (version skew or a
    // corrupt record found by get()); counted under the exclusive lock, so
    // the existence check cannot race another writer's rename.
    const bool heal = ::access(final_path.c_str(), F_OK) == 0;
    if (std::rename(tmp.c_str(), final_path.c_str()) != 0) return fail();
    c_->writes.fetch_add(1, std::memory_order_relaxed);
    store_obs().writes.add();
    if (heal) store_obs().heals.add();
    return true;
}

store_stats result_store::stats() const {
    store_stats out;
    out.hits = c_->hits.load(std::memory_order_relaxed);
    out.misses = c_->misses.load(std::memory_order_relaxed);
    out.corrupt = c_->corrupt.load(std::memory_order_relaxed);
    out.version_skew = c_->skew.load(std::memory_order_relaxed);
    out.writes = c_->writes.load(std::memory_order_relaxed);
    out.write_errors = c_->write_errors.load(std::memory_order_relaxed);
    return out;
}

}  // namespace asynth::store
