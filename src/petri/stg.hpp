// Signal Transition Graphs: safe Petri nets whose transitions are labelled
// with signal edges (a+, a-, a~) or, before handshake expansion, with channel
// actions (a?, a!).  This is the central specification model of the paper
// (section 2): the partial specification, the expanded STG, and the STG
// recovered from a reduced state graph are all instances of this class.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/dyn_bitset.hpp"
#include "util/error.hpp"

namespace asynth {

/// Role of a signal in the interface of the controller under design.
enum class signal_kind : uint8_t {
    input,     ///< driven by the environment
    output,    ///< driven by the circuit, observable
    internal,  ///< driven by the circuit, not observable (state/CSC signals)
    channel,   ///< abstract CSP-like channel; removed by handshake expansion
};

/// Direction of a transition on a signal or channel.
enum class edge : uint8_t {
    plus,    ///< rising transition "a+"
    minus,   ///< falling transition "a-"
    toggle,  ///< 2-phase transition "a~"
    recv,    ///< channel input action "a?"
    send,    ///< channel output action "a!"
};

[[nodiscard]] char edge_char(edge e) noexcept;

/// A transition label: signal index, direction and instance number.  Two
/// transitions of the same signal and direction are distinguished by their
/// instance (printed "a+" for instance 1, "a+/2" for instance 2, ...).
struct event_label {
    int32_t signal = -1;
    edge dir = edge::plus;
    int32_t instance = 1;

    [[nodiscard]] bool operator==(const event_label&) const = default;
    /// Same signal and direction, ignoring the instance number.
    [[nodiscard]] bool same_event(const event_label& o) const noexcept {
        return signal == o.signal && dir == o.dir;
    }
};

/// One entry of the signal table shared by STGs and state graphs.
struct signal_decl {
    std::string name;                          ///< unique printable identifier
    signal_kind kind = signal_kind::internal;  ///< interface role
    /// Partially specified: only the functional edges appear in the spec and
    /// handshake expansion must insert the return-to-zero edge (Fig. 5.a/b).
    bool partial = false;
    /// Initial value; only consulted for signals whose value cannot be
    /// deduced from the token game (e.g. toggle-only signals).
    bool initial_value = false;
};

/// A place of the underlying safe Petri net.
struct pn_place {
    std::string name;     ///< unique printable identifier
    uint32_t tokens = 0;  ///< initial marking (0 or 1; the net is safe)
    /// Implicit places (created from transition->transition arcs in .g files)
    /// are rendered back as such by the writer.
    bool implicit = false;
};

/// A transition of the net, labelled with a signal/channel event.
struct pn_transition {
    event_label label;           ///< signal edge or channel action
    std::vector<uint32_t> pre;   ///< input places
    std::vector<uint32_t> post;  ///< output places
};

/// Marking of a safe net: one bit per place.
using marking = dyn_bitset;

class stg {
public:
    // ---- signals ---------------------------------------------------------
    uint32_t add_signal(std::string name, signal_kind kind, bool partial = false);
    [[nodiscard]] const std::vector<signal_decl>& signals() const noexcept { return signals_; }
    [[nodiscard]] signal_decl& signal_at(uint32_t i) { return signals_.at(i); }
    [[nodiscard]] const signal_decl& signal_at(uint32_t i) const { return signals_.at(i); }
    [[nodiscard]] std::optional<uint32_t> find_signal(std::string_view name) const noexcept;
    [[nodiscard]] std::size_t signal_count() const noexcept { return signals_.size(); }

    // ---- structure -------------------------------------------------------
    uint32_t add_place(std::string name, uint32_t tokens = 0, bool implicit = false);
    /// Adds a transition; when @p label.instance is 0 the next free instance
    /// number for (signal, dir) is assigned automatically.
    uint32_t add_transition(event_label label);
    void add_arc_pt(uint32_t place, uint32_t transition);
    void add_arc_tp(uint32_t transition, uint32_t place);
    /// Creates an implicit place between two transitions (a "t1 -> t2" arc).
    uint32_t connect(uint32_t t_from, uint32_t t_to, uint32_t tokens = 0);

    [[nodiscard]] const std::vector<pn_place>& places() const noexcept { return places_; }
    [[nodiscard]] const std::vector<pn_transition>& transitions() const noexcept { return transitions_; }
    [[nodiscard]] pn_place& place_at(uint32_t i) { return places_.at(i); }
    [[nodiscard]] const pn_place& place_at(uint32_t i) const { return places_.at(i); }
    [[nodiscard]] const pn_transition& transition_at(uint32_t i) const { return transitions_.at(i); }
    [[nodiscard]] std::optional<uint32_t> find_place(std::string_view name) const noexcept;
    /// Finds the transition with the exact label (signal, dir, instance).
    [[nodiscard]] std::optional<uint32_t> find_transition(const event_label& l) const noexcept;
    /// Finds the unique transition with the given (signal, dir), whatever the
    /// instance; throws when ambiguous.
    [[nodiscard]] std::optional<uint32_t> find_transition(uint32_t sig, edge dir) const;

    /// Transitions consuming from place @p p.
    [[nodiscard]] const std::vector<uint32_t>& place_post(uint32_t p) const { return place_post_.at(p); }
    [[nodiscard]] const std::vector<uint32_t>& place_pre(uint32_t p) const { return place_pre_.at(p); }

    // ---- token game ------------------------------------------------------
    [[nodiscard]] marking initial_marking() const;
    [[nodiscard]] bool enabled(const marking& m, uint32_t transition) const;
    /// Fires @p transition from @p m.  Throws asynth::error when the firing
    /// would make the net unsafe (a post place already marked).
    [[nodiscard]] marking fire(const marking& m, uint32_t transition) const;

    // ---- misc ------------------------------------------------------------
    /// Keeps only the flagged places/transitions, dropping dangling arcs and
    /// renumbering instances densely.  Used by expansion dead-branch pruning.
    [[nodiscard]] stg filtered(const dyn_bitset& keep_places, const dyn_bitset& keep_transitions) const;

    /// Printable transition label, e.g. "req+", "ack-/2", "ch?".
    [[nodiscard]] std::string label_name(const event_label& l) const;
    [[nodiscard]] std::string transition_name(uint32_t t) const { return label_name(transitions_.at(t).label); }
    /// Parses "a+", "b-/2", "c~", "d?", "e!" against the signal table.
    [[nodiscard]] std::optional<event_label> parse_label(std::string_view text) const;

    std::string model_name = "model";
    /// Pairs of labels whose concurrency must be preserved by reshuffling
    /// (the paper's Keep_Conc input, Fig. 9).
    std::vector<std::pair<event_label, event_label>> keep_concurrent;

private:
    std::vector<signal_decl> signals_;
    std::vector<pn_place> places_;
    std::vector<pn_transition> transitions_;
    std::vector<std::vector<uint32_t>> place_pre_;   // transitions producing into place
    std::vector<std::vector<uint32_t>> place_post_;  // transitions consuming from place
};

}  // namespace asynth
