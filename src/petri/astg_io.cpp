#include "petri/astg_io.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace asynth {
namespace {

std::vector<std::string> tokenize(std::string_view line) {
    std::vector<std::string> out;
    std::string cur;
    for (char c : line) {
        if (c == '#') break;
        if (c == ' ' || c == '\t' || c == '\r') {
            if (!cur.empty()) out.push_back(std::move(cur)), cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty()) out.push_back(std::move(cur));
    return out;
}

struct pending_arc {
    std::string from, to;
    std::size_t line;
};

class astg_parser {
public:
    stg run(std::string_view text) {
        std::istringstream in{std::string(text)};
        std::string line;
        std::size_t lineno = 0;
        bool in_graph = false;
        while (std::getline(in, line)) {
            ++lineno;
            auto tok = tokenize(line);
            if (tok.empty()) continue;
            const std::string& head = tok[0];
            if (head == ".model" || head == ".name") {
                if (tok.size() >= 2) net_.model_name = tok[1];
            } else if (head == ".inputs") {
                declare(tok, signal_kind::input);
            } else if (head == ".outputs") {
                declare(tok, signal_kind::output);
            } else if (head == ".internal") {
                declare(tok, signal_kind::internal);
            } else if (head == ".channels") {
                declare(tok, signal_kind::channel);
            } else if (head == ".partial") {
                for (std::size_t i = 1; i < tok.size(); ++i) {
                    auto s = net_.find_signal(tok[i]);
                    if (!s) throw parse_error(lineno, ".partial of undeclared signal '" + tok[i] + "'");
                    net_.signal_at(*s).partial = true;
                }
            } else if (head == ".initial") {
                for (std::size_t i = 1; i < tok.size(); ++i) parse_initial(tok[i], lineno);
            } else if (head == ".keepconc") {
                if (tok.size() != 3) throw parse_error(lineno, ".keepconc needs two events");
                keepconc_.emplace_back(tok[1], tok[2], lineno);
            } else if (head == ".graph") {
                in_graph = true;
            } else if (head == ".marking") {
                parse_marking(tok, lineno);
            } else if (head == ".end") {
                break;
            } else if (head == ".capacity" || head == ".slowenv" || head == ".dummy") {
                throw parse_error(lineno, "directive '" + head + "' is not supported");
            } else if (head[0] == '.') {
                throw parse_error(lineno, "unknown directive '" + head + "'");
            } else {
                if (!in_graph) throw parse_error(lineno, "arc line before .graph");
                if (tok.size() < 2) throw parse_error(lineno, "arc line needs a source and targets");
                for (std::size_t i = 1; i < tok.size(); ++i)
                    arcs_.push_back(pending_arc{tok[0], tok[i], lineno});
            }
        }
        build();
        return std::move(net_);
    }

private:
    void declare(const std::vector<std::string>& tok, signal_kind kind) {
        for (std::size_t i = 1; i < tok.size(); ++i) net_.add_signal(tok[i], kind);
    }

    void parse_initial(const std::string& item, std::size_t lineno) {
        auto eq = item.find('=');
        if (eq == std::string::npos) throw parse_error(lineno, ".initial item needs '='");
        auto s = net_.find_signal(item.substr(0, eq));
        if (!s) throw parse_error(lineno, ".initial of undeclared signal");
        const std::string val = item.substr(eq + 1);
        if (val != "0" && val != "1") throw parse_error(lineno, ".initial value must be 0 or 1");
        net_.signal_at(*s).initial_value = (val == "1");
    }

    void parse_marking(const std::vector<std::string>& tok, std::size_t lineno) {
        // Tokens may look like: { p1 <a+,b-> } possibly glued to braces.
        std::string joined;
        for (std::size_t i = 1; i < tok.size(); ++i) joined += tok[i] + " ";
        std::string cleaned;
        for (char c : joined)
            if (c != '{' && c != '}') cleaned += c;
        std::string cur;
        std::istringstream items{cleaned};
        while (items >> cur) marking_items_.emplace_back(cur, lineno);
    }

    // A node name denotes a transition iff it parses as a label of a declared
    // signal; otherwise it is a place.
    bool is_transition_name(const std::string& name) const {
        return net_.parse_label(name).has_value();
    }

    uint32_t get_transition(const std::string& name, std::size_t lineno) {
        auto l = net_.parse_label(name);
        if (!l) throw parse_error(lineno, "cannot parse transition '" + name + "'");
        if (auto t = net_.find_transition(*l)) return *t;
        return net_.add_transition(*l);
    }

    uint32_t get_place(const std::string& name) {
        if (auto p = net_.find_place(name)) return *p;
        return net_.add_place(name, 0, /*implicit=*/false);
    }

    void build() {
        // First pass: create all transitions so implicit place names match.
        for (const auto& a : arcs_) {
            if (is_transition_name(a.from)) get_transition(a.from, a.line);
            if (is_transition_name(a.to)) get_transition(a.to, a.line);
        }
        for (const auto& a : arcs_) {
            const bool ft = is_transition_name(a.from);
            const bool tt = is_transition_name(a.to);
            if (ft && tt) {
                net_.connect(get_transition(a.from, a.line), get_transition(a.to, a.line));
            } else if (ft && !tt) {
                net_.add_arc_tp(get_transition(a.from, a.line), get_place(a.to));
            } else if (!ft && tt) {
                net_.add_arc_pt(get_place(a.from), get_transition(a.to, a.line));
            } else {
                throw parse_error(a.line, "place-to-place arc '" + a.from + " -> " + a.to + "'");
            }
        }
        for (const auto& [item, lineno] : marking_items_) {
            uint32_t p;
            if (item.front() == '<') {
                auto found = net_.find_place(item);
                if (!found) throw parse_error(lineno, "marking of unknown implicit place '" + item + "'");
                p = *found;
            } else {
                auto found = net_.find_place(item);
                if (!found) throw parse_error(lineno, "marking of unknown place '" + item + "'");
                p = *found;
            }
            net_.place_at(p).tokens = 1;
        }
        for (const auto& [e1, e2, lineno] : keepconc_) {
            auto l1 = net_.parse_label(e1);
            auto l2 = net_.parse_label(e2);
            if (!l1 || !l2) throw parse_error(lineno, "bad .keepconc event");
            net_.keep_concurrent.emplace_back(*l1, *l2);
        }
    }

    stg net_;
    std::vector<pending_arc> arcs_;
    std::vector<std::pair<std::string, std::size_t>> marking_items_;
    std::vector<std::tuple<std::string, std::string, std::size_t>> keepconc_;
};

}  // namespace

stg parse_astg(std::string_view text) { return astg_parser{}.run(text); }

stg parse_astg_stream(std::istream& in) {
    std::ostringstream all;
    all << in.rdbuf();
    return parse_astg(all.str());
}

std::string write_astg(const stg& net) {
    std::ostringstream out;
    out << ".model " << net.model_name << "\n";
    auto emit_kind = [&](signal_kind k, const char* directive) {
        std::string line;
        for (const auto& s : net.signals())
            if (s.kind == k) line += " " + s.name;
        if (!line.empty()) out << directive << line << "\n";
    };
    emit_kind(signal_kind::input, ".inputs");
    emit_kind(signal_kind::output, ".outputs");
    emit_kind(signal_kind::internal, ".internal");
    emit_kind(signal_kind::channel, ".channels");
    {
        std::string line;
        for (const auto& s : net.signals())
            if (s.partial) line += " " + s.name;
        if (!line.empty()) out << ".partial" << line << "\n";
    }
    {
        std::string line;
        for (const auto& s : net.signals())
            if (s.initial_value) line += " " + s.name + "=1";
        if (!line.empty()) out << ".initial" << line << "\n";
    }
    out << ".graph\n";
    // A place is written implicitly (as a direct t->t arc) iff it is flagged
    // implicit and has exactly one producer and one consumer and no tokens
    // (marked implicit places are named in .marking, so keep them explicit
    // only if their name would be ambiguous -- the <t,t> form is allowed).
    const auto& places = net.places();
    std::vector<bool> implicit(places.size(), false);
    for (uint32_t p = 0; p < places.size(); ++p)
        implicit[p] = places[p].implicit && net.place_pre(p).size() == 1 &&
                      net.place_post(p).size() == 1;
    // The parser numbers transitions and places by first sight in the text,
    // so for the written text to be a fixpoint of write_astg(parse_astg(.))
    // the lines must be emitted in exactly that first-encounter order.  Build
    // the order directly with a worklist mirroring the reader: always emit
    // the line of the earliest-sighted transition that still needs one and
    // record the names its line introduces, seeding disconnected components
    // from internal table order.  Reparsing the result reproduces the same
    // sight order, so the text is stable after a single write (an iterative
    // sort-until-stable scheme here can cycle and stop on a non-fixpoint --
    // the fuzzer's text-roundtrip oracle caught exactly that).
    const auto& transitions = net.transitions();
    const std::size_t nt = transitions.size();
    std::vector<uint32_t> t_sight, p_sight;
    std::vector<bool> t_seen(nt, false), p_seen(places.size(), false);
    auto see_t = [&](uint32_t t) {
        if (!t_seen[t]) {
            t_seen[t] = true;
            t_sight.push_back(t);
        }
    };
    auto see_p = [&](uint32_t p) {
        if (!p_seen[p]) {
            p_seen[p] = true;
            p_sight.push_back(p);
        }
    };
    std::vector<uint32_t> t_lines;
    {
        std::size_t cursor = 0;
        std::vector<bool> emitted(nt, false);
        uint32_t seed = 0;
        for (;;) {
            while (cursor < t_sight.size() &&
                   (emitted[t_sight[cursor]] || transitions[t_sight[cursor]].post.empty()))
                ++cursor;
            uint32_t t;
            if (cursor < t_sight.size()) {
                t = t_sight[cursor];
            } else {
                while (seed < nt && (t_seen[seed] || transitions[seed].post.empty())) ++seed;
                if (seed == nt) break;
                t = seed;
                see_t(t);
            }
            emitted[t] = true;
            t_lines.push_back(t);
            for (uint32_t p : transitions[t].post) {
                see_p(p);
                if (implicit[p]) see_t(net.place_post(p)[0]);
            }
        }
    }
    std::vector<uint32_t> p_lines;
    {
        std::size_t cursor = 0;
        std::vector<bool> emitted(places.size(), false);
        uint32_t seed = 0;
        auto needs_line = [&](uint32_t p) { return !implicit[p] && !net.place_post(p).empty(); };
        for (;;) {
            while (cursor < p_sight.size() &&
                   (emitted[p_sight[cursor]] || !needs_line(p_sight[cursor])))
                ++cursor;
            uint32_t p;
            if (cursor < p_sight.size()) {
                p = p_sight[cursor];
            } else {
                while (seed < places.size() && (p_seen[seed] || !needs_line(seed))) ++seed;
                if (seed == places.size()) break;
                p = seed;
                see_p(p);
            }
            emitted[p] = true;
            p_lines.push_back(p);
            for (uint32_t t : net.place_post(p)) see_t(t);
        }
    }

    for (uint32_t t : t_lines) {
        std::string line = net.transition_name(t);
        for (uint32_t p : transitions[t].post) {
            if (implicit[p]) {
                line += " " + net.transition_name(net.place_post(p)[0]);
            } else {
                line += " " + places[p].name;
            }
        }
        out << line << "\n";
    }
    for (uint32_t p : p_lines) {
        std::string line = places[p].name;
        for (uint32_t t : net.place_post(p)) line += " " + net.transition_name(t);
        out << line << "\n";
    }
    out << ".marking {";
    for (uint32_t p = 0; p < places.size(); ++p) {
        if (places[p].tokens == 0) continue;
        // A marked place with no arcs would appear only here and the text
        // would not reparse ("marking of unknown place"); fail loudly at
        // write time instead of producing unreadable output.
        require(!net.place_pre(p).empty() || !net.place_post(p).empty(),
                "write_astg: marked place '" + places[p].name +
                    "' has no arcs and cannot be represented in .g");
    }
    // Every marked place has arcs (checked above), so it was sighted while
    // its lines were emitted; iterating the sight order keeps the marking
    // section consistent with the parser's place numbering.
    for (uint32_t p : p_sight) {
        if (places[p].tokens == 0) continue;
        if (implicit[p]) {
            out << " <" << net.transition_name(net.place_pre(p)[0]) << ","
                << net.transition_name(net.place_post(p)[0]) << ">";
        } else {
            out << " " << places[p].name;
        }
    }
    out << " }\n";
    for (const auto& [a, b] : net.keep_concurrent)
        out << ".keepconc " << net.label_name(a) << " " << net.label_name(b) << "\n";
    out << ".end\n";
    return out.str();
}

std::string write_dot(const stg& net) {
    std::ostringstream out;
    out << "digraph " << net.model_name << " {\n";
    for (uint32_t t = 0; t < net.transitions().size(); ++t)
        out << "  t" << t << " [shape=box,label=\"" << net.transition_name(t) << "\"];\n";
    for (uint32_t p = 0; p < net.places().size(); ++p) {
        const auto& pl = net.places()[p];
        out << "  p" << p << " [shape=circle,label=\"" << (pl.tokens ? "*" : "") << "\"];\n";
    }
    for (uint32_t t = 0; t < net.transitions().size(); ++t) {
        for (uint32_t p : net.transitions()[t].post) out << "  t" << t << " -> p" << p << ";\n";
        for (uint32_t p : net.transitions()[t].pre) out << "  p" << p << " -> t" << t << ";\n";
    }
    out << "}\n";
    return out.str();
}

}  // namespace asynth
