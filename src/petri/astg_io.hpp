// Reader and writer for the astg (.g) text format used by petrify/SIS, with
// the extensions needed for partial specifications:
//
//   .model <name>
//   .inputs / .outputs / .internal <signal>...
//   .channels <signal>...          # CSP-like channels; events are "a?"/"a!"
//   .partial <signal>...           # partially specified: only functional
//                                  # edges present, expansion inserts resets
//   .initial <signal>=<0|1> ...    # initial values for toggle-only signals
//   .keepconc <ev> <ev>            # Keep_Conc pair for the reshuffler
//   .graph
//   <node> <node>...               # arcs; nodes are transitions or places
//   .marking { <place|<t,t>> ... }
//   .end
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "petri/stg.hpp"

namespace asynth {

/// Parses an STG from astg text.  Throws asynth::parse_error on bad input.
[[nodiscard]] stg parse_astg(std::string_view text);

/// Reads from a stream (e.g. std::ifstream).
[[nodiscard]] stg parse_astg_stream(std::istream& in);

/// Serialises an STG to astg text (round-trips through parse_astg).
[[nodiscard]] std::string write_astg(const stg& net);

/// Graphviz rendering of the net.
[[nodiscard]] std::string write_dot(const stg& net);

}  // namespace asynth
