#include "petri/stg.hpp"

#include <algorithm>
#include <charconv>

namespace asynth {

char edge_char(edge e) noexcept {
    switch (e) {
        case edge::plus: return '+';
        case edge::minus: return '-';
        case edge::toggle: return '~';
        case edge::recv: return '?';
        case edge::send: return '!';
    }
    return '?';
}

uint32_t stg::add_signal(std::string name, signal_kind kind, bool partial) {
    require(!find_signal(name).has_value(), "duplicate signal '" + name + "'");
    signals_.push_back(signal_decl{std::move(name), kind, partial, false});
    return static_cast<uint32_t>(signals_.size() - 1);
}

std::optional<uint32_t> stg::find_signal(std::string_view name) const noexcept {
    for (uint32_t i = 0; i < signals_.size(); ++i)
        if (signals_[i].name == name) return i;
    return std::nullopt;
}

uint32_t stg::add_place(std::string name, uint32_t tokens, bool implicit) {
    if (name.empty()) name = "p_" + std::to_string(places_.size());
    require(!find_place(name).has_value(), "duplicate place '" + name + "'");
    places_.push_back(pn_place{std::move(name), tokens, implicit});
    place_pre_.emplace_back();
    place_post_.emplace_back();
    return static_cast<uint32_t>(places_.size() - 1);
}

uint32_t stg::add_transition(event_label label) {
    require(label.signal >= 0 && static_cast<std::size_t>(label.signal) < signals_.size(),
            "transition references unknown signal");
    if (label.instance == 0) {
        int32_t max_inst = 0;
        for (const auto& t : transitions_)
            if (t.label.same_event(label)) max_inst = std::max(max_inst, t.label.instance);
        label.instance = max_inst + 1;
    } else {
        require(!find_transition(label).has_value(),
                "duplicate transition '" + label_name(label) + "'");
    }
    transitions_.push_back(pn_transition{label, {}, {}});
    return static_cast<uint32_t>(transitions_.size() - 1);
}

void stg::add_arc_pt(uint32_t place, uint32_t transition) {
    auto& pre = transitions_.at(transition).pre;
    if (std::find(pre.begin(), pre.end(), place) != pre.end()) return;
    pre.push_back(place);
    place_post_.at(place).push_back(transition);
}

void stg::add_arc_tp(uint32_t transition, uint32_t place) {
    auto& post = transitions_.at(transition).post;
    if (std::find(post.begin(), post.end(), place) != post.end()) return;
    post.push_back(place);
    place_pre_.at(place).push_back(transition);
}

uint32_t stg::connect(uint32_t t_from, uint32_t t_to, uint32_t tokens) {
    const std::string name =
        "<" + transition_name(t_from) + "," + transition_name(t_to) + ">";
    auto existing = find_place(name);
    uint32_t p = existing ? *existing : add_place(name, tokens, /*implicit=*/true);
    if (existing && tokens > 0) places_[p].tokens = tokens;
    add_arc_tp(t_from, p);
    add_arc_pt(p, t_to);
    return p;
}

std::optional<uint32_t> stg::find_place(std::string_view name) const noexcept {
    for (uint32_t i = 0; i < places_.size(); ++i)
        if (places_[i].name == name) return i;
    return std::nullopt;
}

std::optional<uint32_t> stg::find_transition(const event_label& l) const noexcept {
    for (uint32_t i = 0; i < transitions_.size(); ++i)
        if (transitions_[i].label == l) return i;
    return std::nullopt;
}

std::optional<uint32_t> stg::find_transition(uint32_t sig, edge dir) const {
    std::optional<uint32_t> found;
    for (uint32_t i = 0; i < transitions_.size(); ++i) {
        const auto& l = transitions_[i].label;
        if (l.signal == static_cast<int32_t>(sig) && l.dir == dir) {
            require(!found.has_value(), "ambiguous transition lookup for signal '" +
                                            signals_.at(sig).name + edge_char(dir) + "'");
            found = i;
        }
    }
    return found;
}

marking stg::initial_marking() const {
    marking m(places_.size());
    for (std::size_t i = 0; i < places_.size(); ++i) {
        require(places_[i].tokens <= 1, "place '" + places_[i].name + "' is not safe");
        if (places_[i].tokens) m.set(i);
    }
    return m;
}

bool stg::enabled(const marking& m, uint32_t transition) const {
    for (uint32_t p : transitions_.at(transition).pre)
        if (!m.test(p)) return false;
    return true;
}

marking stg::fire(const marking& m, uint32_t transition) const {
    require(enabled(m, transition),
            "firing disabled transition '" + transition_name(transition) + "'");
    marking out = m;
    const auto& t = transitions_[transition];
    for (uint32_t p : t.pre) out.reset(p);
    for (uint32_t p : t.post) {
        require(!out.test(p), "unsafe firing of '" + transition_name(transition) +
                                  "': place '" + places_[p].name + "' already marked");
        out.set(p);
    }
    return out;
}

stg stg::filtered(const dyn_bitset& keep_places, const dyn_bitset& keep_transitions) const {
    stg out;
    out.model_name = model_name;
    out.keep_concurrent = keep_concurrent;
    out.signals_ = signals_;

    std::vector<uint32_t> place_map(places_.size(), UINT32_MAX);
    for (uint32_t p = 0; p < places_.size(); ++p)
        if (keep_places.test(p))
            place_map[p] = out.add_place(places_[p].name, places_[p].tokens, places_[p].implicit);

    for (uint32_t t = 0; t < transitions_.size(); ++t) {
        if (!keep_transitions.test(t)) continue;
        // Instance numbers are re-assigned densely per (signal, dir).
        event_label l = transitions_[t].label;
        l.instance = 0;
        uint32_t nt = out.add_transition(l);
        for (uint32_t p : transitions_[t].pre)
            if (keep_places.test(p)) out.add_arc_pt(place_map[p], nt);
        for (uint32_t p : transitions_[t].post)
            if (keep_places.test(p)) out.add_arc_tp(nt, place_map[p]);
    }

    // Drop signals that lost all their transitions?  Keep them: callers decide.
    return out;
}

std::string stg::label_name(const event_label& l) const {
    std::string s = signals_.at(static_cast<uint32_t>(l.signal)).name;
    s += edge_char(l.dir);
    if (l.instance > 1) {
        s += '/';
        s += std::to_string(l.instance);
    }
    return s;
}

std::optional<event_label> stg::parse_label(std::string_view text) const {
    // Split optional "/k" instance suffix.
    int32_t instance = 1;
    if (auto slash = text.rfind('/'); slash != std::string_view::npos) {
        int v = 0;
        auto digits = text.substr(slash + 1);
        auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), v);
        if (ec != std::errc() || ptr != digits.data() + digits.size() || v < 1) return std::nullopt;
        instance = v;
        text = text.substr(0, slash);
    }
    if (text.size() < 2) return std::nullopt;
    edge dir;
    switch (text.back()) {
        case '+': dir = edge::plus; break;
        case '-': dir = edge::minus; break;
        case '~': dir = edge::toggle; break;
        case '?': dir = edge::recv; break;
        case '!': dir = edge::send; break;
        default: return std::nullopt;
    }
    auto sig = find_signal(text.substr(0, text.size() - 1));
    if (!sig) return std::nullopt;
    return event_label{static_cast<int32_t>(*sig), dir, instance};
}

}  // namespace asynth
