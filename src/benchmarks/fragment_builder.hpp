// Handshake-fragment composition shared by the fixed spec suite
// (corpus.cpp) and the random workload generator (generate.cpp).
//
// A fragment is a body piece with transition boundaries: `entries` consume
// the tokens produced upstream, `exits` produce the tokens for the
// successor.  Marked-graph composition keeps the boundaries honest: a
// sequence connects every exit to every entry through its own implicit
// place (which is exactly a fork/join when either side has several
// transitions), and a parallel composition is a boundary union.  Free
// choice -- whose split place needs a *single* producer -- lives in
// generate.cpp on top of these primitives.
//
// Internal to asynth::benchmarks; not part of the library API.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "petri/stg.hpp"

namespace asynth::benchmarks::detail {

struct fragment {
    std::vector<uint32_t> entries;  ///< transitions consuming upstream tokens
    std::vector<uint32_t> exits;    ///< transitions feeding the next stage
};

/// An active handshake call on @p channel: c! ; c?.
inline fragment call_fragment(stg& net, int32_t channel) {
    uint32_t send = net.add_transition({channel, edge::send, 0});
    uint32_t recv = net.add_transition({channel, edge::recv, 0});
    net.connect(send, recv);
    return fragment{{send}, {recv}};
}

/// A modulo-@p repeats counter step: `repeats` sequential calls on the ONE
/// channel @p channel (c! ; c? ; c!/2 ; c?/2 ; ...).  add_transition assigns
/// the instance numbers, so the same signal carries several distinguishable
/// transition pairs -- the multi-instance shape the single-call corpus never
/// produces.
inline fragment counter_fragment(stg& net, int32_t channel, int repeats) {
    fragment acc = call_fragment(net, channel);
    for (int i = 1; i < repeats; ++i) {
        fragment step = call_fragment(net, channel);
        net.connect(acc.exits.front(), step.entries.front());
        acc.exits = std::move(step.exits);
    }
    return acc;
}

/// Marked-graph sequence: every exit of @p a feeds every entry of @p b
/// through its own implicit place (fork/join-correct for multi-boundary
/// sides).
inline fragment seq_fragments(stg& net, fragment a, fragment b) {
    for (uint32_t e : a.exits)
        for (uint32_t s : b.entries) net.connect(e, s);
    return fragment{std::move(a.entries), std::move(b.exits)};
}

/// Marked-graph parallel composition: boundary union.
inline fragment par_fragments(fragment a, fragment b) {
    a.entries.insert(a.entries.end(), b.entries.begin(), b.entries.end());
    a.exits.insert(a.exits.end(), b.exits.begin(), b.exits.end());
    return a;
}

/// Wraps @p body in a passive trigger channel t (t? ; body ; t! ; loop) and
/// names the model: the closed-spec shape of every generated workload.
inline stg finish_trigger(stg net, fragment body, std::string name) {
    auto t = static_cast<int32_t>(net.add_signal("t", signal_kind::channel));
    uint32_t trig = net.add_transition({t, edge::recv, 0});
    uint32_t done = net.add_transition({t, edge::send, 0});
    for (uint32_t s : body.entries) net.connect(trig, s);
    for (uint32_t e : body.exits) net.connect(e, done);
    net.connect(done, trig, 1);
    net.model_name = std::move(name);
    return net;
}

}  // namespace asynth::benchmarks::detail
