// Deterministic random-STG workload generator.
//
// Produces channel-level specifications far larger than the paper's figures
// by composing handshake fragments into marked-graph (sequence, fork/join)
// and free-choice (environment-resolved select) structures:
//
//   * leaf      -- an active handshake call  a!  ;  a?
//   * sequence  -- marked-graph chaining of sub-bodies
//   * parallel  -- marked-graph fork/join of sub-bodies
//   * choice    -- a free-choice place whose branches each start with a
//                  passive request  s_i?  (the *environment* picks the
//                  branch, so the choice stays speed-independent); the
//                  node is bracketed by two sequencer calls so the split
//                  place always receives exactly one token and the merge
//                  place always feeds exactly one consumer (safety)
//
// The whole body hangs off one passive trigger channel t (t? body t!), like
// the Tangram-style specs of src/benchmarks/corpus.cpp, so every generated
// net is expandable, safe and consistently encodable -- tests/test_generate
// checks this property over a seed x size sweep.
//
// Everything is driven by the repository's xorshift64 PRNG: the same
// (seed, options) pair yields byte-identical write_astg() text on every
// platform, which is what makes BENCH_pipeline.json runs comparable
// across machines and PRs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "benchmarks/corpus.hpp"
#include "petri/stg.hpp"

namespace asynth::benchmarks {

/// Shape knobs of one generated specification.
struct generator_options {
    /// Channel budget of the body.  Every construct pays its way: a handshake
    /// call costs 1 channel, a k-branch select costs 2 sequencers + k guards
    /// on top of its branches.  The generated net therefore has exactly
    /// size + 1 channels (body + trigger), i.e. 2*(size+1) signals after
    /// 4-phase expansion -- this is the signal-count knob.  Reachable states
    /// grow roughly 6x per channel (maximal reset concurrency), so size is
    /// also the primary runtime dial.
    int size = 4;
    /// Concurrency degree: probability that a composition node runs its
    /// children in parallel rather than in sequence, in [0, 1].
    double concurrency = 0.5;
    /// Hard cap on the number of *simultaneously active* handshake calls
    /// (the parallel width).  The reachable state count grows exponentially
    /// in this number -- each concurrent 4-phase handshake multiplies the
    /// state space -- so the cap, not `size`, is what bounds SG growth;
    /// raise it deliberately to study the polynomial-vs-exponential scaling
    /// axis (Baudru & Morin, PAPERS.md).
    int max_width = 3;
    /// Probability that a composition node becomes a free-choice select
    /// instead of a seq/par block, in [0, 1].  A select costs one passive
    /// guard channel per branch plus two sequencer channels, so it can only
    /// appear where the remaining budget is >= 6 (selects never fire at the
    /// default size 4; raise size to exercise free choice).
    double choice = 0.15;
    /// Maximum children of one composition node (>= 2).
    int max_fanout = 3;
};

/// Generates one specification.  Deterministic in (seed, opt); the model
/// name encodes both ("gen_s<seed>_n<size>").
[[nodiscard]] stg generate_stg(uint64_t seed, const generator_options& opt = {});

/// The same specification as canonical astg (.g) text -- byte-identical for
/// equal (seed, opt) on every platform.
[[nodiscard]] std::string generate_astg(uint64_t seed, const generator_options& opt = {});

/// A workload of @p count specifications seeded first_seed, first_seed+1, ...
/// (names are the model names, unique within the workload).
[[nodiscard]] std::vector<named_spec> generate_workload(uint64_t first_seed, std::size_t count,
                                                        const generator_options& opt = {});

}  // namespace asynth::benchmarks
