// Deterministic random-STG workload generator.
//
// Produces channel-level specifications far larger than the paper's figures
// by composing handshake fragments into marked-graph (sequence, fork/join),
// free-choice (environment-resolved select) and non-free-choice (arbitrated
// mutual exclusion) structures:
//
//   * leaf        -- an active handshake call  a!  ;  a?
//   * counter     -- a modulo-n step sequence: n sequential calls on ONE
//                    shared channel (the spec's only multi-instance events;
//                    n in [2, 4]); costs one channel like a plain call
//   * sequence    -- marked-graph chaining of sub-bodies
//   * parallel    -- marked-graph fork/join of sub-bodies
//   * choice      -- a free-choice place whose k >= min_choice_ways branches
//                    each start with a passive request  s_i?  (the
//                    *environment* picks the branch, so the choice stays
//                    speed-independent); the node is bracketed by two
//                    sequencer calls so the split place always receives
//                    exactly one token and the merge place always feeds
//                    exactly one consumer (safety)
//   * arbitration -- k parallel branches whose trailing critical-section
//                    calls contend for one shared marked mutex place.  The
//                    place's consumers are *output* request edges, so which
//                    branch wins is resolved dynamically at run time -- the
//                    only non-free-choice, non-speed-independent structure
//                    the generator emits, and exactly the behaviour the
//                    handshake-only corpus never reaches
//
// The whole body hangs off one passive trigger channel t (t? body t!), like
// the Tangram-style specs of src/benchmarks/corpus.cpp, so every generated
// net is expandable, safe and consistently encodable -- tests/test_generate
// checks this property over a seed x size x family sweep.
//
// Generation is split into two deterministic layers so that callers (the
// differential fuzz harness, src/fuzz/) can *shrink* a failing spec by
// structural surgery instead of guessing seeds:
//
//   generate_recipe(seed, opt)  -- all PRNG decisions; returns a spec_node tree
//   build_spec(recipe, name)    -- pure materialisation of a tree into an stg
//
// generate_stg() is exactly their composition, and stays byte-identical to
// the pre-recipe implementation for every legacy (seed, options) pair: new
// family knobs only consume PRNG draws when enabled, so BENCH_pipeline.json
// workloads keep their identity across this refactor.
//
// Impossible family/budget combinations are *rejected* with an asynth::error
// (validate_generator_options) instead of silently degrading to a smaller or
// simpler spec -- a caller who asked for arbitration in a budget that can
// never afford one gets told, not quietly handed a plain handshake net.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "benchmarks/corpus.hpp"
#include "petri/stg.hpp"

namespace asynth::benchmarks {

/// Shape knobs of one generated specification.
struct generator_options {
    /// Channel budget of the body.  Every construct pays its way: a handshake
    /// call or counter costs 1 channel, a k-branch select costs 2 sequencers
    /// + k guards on top of its branches, a k-way arbitration costs k
    /// critical channels on top of its branches.  The generated net
    /// therefore has exactly size + 1 channels (body + trigger), i.e.
    /// 2*(size+1) signals after 4-phase expansion -- this is the
    /// signal-count knob.  Reachable states grow roughly 6x per channel
    /// (maximal reset concurrency), so size is also the primary runtime
    /// dial.  Must be >= 1.
    int size = 4;
    /// Concurrency degree: probability that a composition node runs its
    /// children in parallel rather than in sequence, in [0, 1].
    double concurrency = 0.5;
    /// Hard cap on the number of *simultaneously active* handshake calls
    /// (the parallel width).  The reachable state count grows exponentially
    /// in this number -- each concurrent 4-phase handshake multiplies the
    /// state space -- so the cap, not `size`, is what bounds SG growth;
    /// raise it deliberately to study the polynomial-vs-exponential scaling
    /// axis (Baudru & Morin, PAPERS.md).  Must be >= 1.
    int max_width = 3;
    /// Probability that a composition node becomes a free-choice select
    /// instead of a seq/par block, in [0, 1].  A k-branch select costs one
    /// passive guard channel per branch plus two sequencer channels, so it
    /// can only appear where the remaining budget is >= 2 + 2k (>= 6 for
    /// two-way selects: they never fire at the default size 4; raise size to
    /// exercise free choice).  choice >= 1 with a budget that can never
    /// afford a single select is rejected (validate_generator_options); a
    /// probabilistic 0 < choice < 1 merely may not fire, as documented since
    /// the knob was introduced.
    double choice = 0.15;
    /// Maximum children of one composition node (>= 2).
    int max_fanout = 3;
    /// Probability that a composition node becomes a k-way arbitration
    /// instead of a seq/par block, in [0, 1].  An arbitration needs budget
    /// >= 4 (two branches of one call each plus two critical channels) and
    /// width >= 2 (the branches run concurrently); any nonzero value with a
    /// size or max_width that can never afford one is rejected.
    double arbitration = 0.0;
    /// Probability that a leaf becomes a modulo-n counter (n sequential
    /// calls on one shared channel, n in [2, 4]) instead of a single call,
    /// in [0, 1].  Costs one channel; always affordable.
    double counter = 0.0;
    /// Lower bound on select branches (>= 2).  Values > 2 demand multi-way
    /// choice: every select then has >= min_choice_ways branches, and the
    /// combination is rejected unless max_fanout >= min_choice_ways and
    /// (when choice > 0) size >= 2 + 2*min_choice_ways, so a demanded
    /// multi-way family can actually appear.
    int min_choice_ways = 2;
};

/// Validates @p opt; throws asynth::error naming the offending knob when the
/// options are malformed (out-of-range or NaN values) or demand a family the
/// budget can provably never produce.  Called by generate_recipe().
void validate_generator_options(const generator_options& opt);

/// One node of a generated specification's structure tree.  The tree is the
/// shrinkable identity of a spec: build_spec() materialises it into the stg,
/// assigning channel names in deterministic depth-first order, and the fuzz
/// harness (src/fuzz/shrink.hpp) edits trees -- dropping branches, hoisting
/// children, shortening counters -- to minimise failing specs.
struct spec_node {
    enum class kind : uint8_t {
        call,         ///< one active handshake call on a fresh channel
        counter,      ///< `repeats` sequential calls on one fresh channel
        sequence,     ///< children chained with fork/join-correct places
        parallel,     ///< children composed as a boundary union
        choice,       ///< free-choice select; children are the branch bodies
        arbitration,  ///< mutex-contended branches; children are the bodies
    };
    kind k = kind::call;
    /// counter only: sequential calls on the shared channel (>= 2; a value
    /// of 1 is a plain call and is normalised to one by the shrinker).
    int repeats = 2;
    std::vector<spec_node> children;  ///< composite nodes only

    /// Channel budget this subtree spends (the `size` accounting): call and
    /// counter cost 1, choice adds 2 sequencers + one guard per branch,
    /// arbitration adds one critical channel per branch.
    [[nodiscard]] int channels() const;
    /// Does this subtree contain a node of kind @p kk?
    [[nodiscard]] bool contains(kind kk) const;
};

/// All PRNG decisions of one generated specification: deterministic in
/// (seed, opt), spending exactly opt.size channels.  Throws asynth::error on
/// invalid options (validate_generator_options).
[[nodiscard]] spec_node generate_recipe(uint64_t seed, const generator_options& opt = {});

/// Materialises @p root into a channel STG wrapped in the passive trigger
/// loop, with model name @p name.  Pure: equal trees yield byte-identical
/// write_astg() text.  Channel naming is depth-first creation order -- calls
/// a0, a1, ..., counters c0, ..., select guards s0, ... with sequencers
/// q0, ..., arbitration critical channels m0, ..., trigger t last.
[[nodiscard]] stg build_spec(const spec_node& root, const std::string& name);

/// Generates one specification: build_spec(generate_recipe(seed, opt)).  The
/// model name encodes seed and size ("gen_s<seed>_n<size>").
[[nodiscard]] stg generate_stg(uint64_t seed, const generator_options& opt = {});

/// The same specification as canonical astg (.g) text -- byte-identical for
/// equal (seed, opt) on every platform.
[[nodiscard]] std::string generate_astg(uint64_t seed, const generator_options& opt = {});

/// A workload of @p count specifications seeded first_seed, first_seed+1, ...
/// (names are the model names, unique within the workload).
[[nodiscard]] std::vector<named_spec> generate_workload(uint64_t first_seed, std::size_t count,
                                                        const generator_options& opt = {});

}  // namespace asynth::benchmarks
