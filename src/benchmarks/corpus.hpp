// Embedded benchmark corpus.
//
// Contains every specification used by the paper's examples and experiments
// (Fig. 1 controller, LR process + the hand-made Q-module, Fig. 6 mixed
// example, Fig. 8 fragment, PAR component + manual Tangram-style solution,
// MMU-like controller for Table 2) plus a deterministic random generator of
// Tangram-style series-parallel handshake specifications used by property
// tests and throughput benchmarks.
//
// The MMU controller is a documented substitution: the exact Myers-Meng STG
// is not recoverable from the paper, so we use a controller with the same
// four channels (b, l, m, r) exercised by Table 2's reshuffling rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "petri/stg.hpp"
#include "sg/state_graph.hpp"

namespace asynth::benchmarks {

/// Fig. 1: simple controller between an asynchronous memory and a processor
/// (Req input, Ack output; 5 states; one CSC conflict).
[[nodiscard]] stg fig1_controller();

/// Fig. 2.c: the LR process -- passive port l, active port r, control passes
/// left to right.  Channel-level spec; expand before synthesis.
[[nodiscard]] stg lr_process();

/// Table 1 row "Q-module (hand)": the classic S-element reshuffling of the
/// LR process, fully specified at the signal level.
[[nodiscard]] stg qmodule_lr();

/// The fully reduced LR process (Fig. 3.b): both ports sequential, which
/// synthesises into two wires (area 0).
[[nodiscard]] stg lr_full_reduction();

/// Fig. 6.a: mixed example with a channel (a), a partially specified signal
/// (b) and a completely specified signal (c).
[[nodiscard]] stg fig6_mixed();

/// Fig. 10.a: the PAR component from Tangram -- passive a, active b and c
/// run in parallel.
[[nodiscard]] stg par_component();

/// A manual PAR solution in the spirit of Fig. 10.c (standard reshuffling
/// with symmetric broad handshakes), used as the hand-design baseline.
[[nodiscard]] stg par_manual();

/// Table 2 substitute: MMU-like controller with passive channel r and active
/// channels l (lookup), m (memory), b (bus) in sequence.
[[nodiscard]] stg mmu_controller();

/// Fig. 8 SG fragment (choice d|e concurrent with a) as a ready-made state
/// graph; used by reduction tests and benches.
[[nodiscard]] state_graph fig8_fragment();

struct named_spec {
    std::string name;
    stg net;
};

/// A fixed suite of channel-level specifications of varying shape (sequence,
/// fork/join, nested parallelism) exercised by property tests and ablations.
[[nodiscard]] std::vector<named_spec> spec_suite();

/// One embedded paper benchmark: CLI name, one-line blurb, factory.
struct corpus_entry {
    const char* name;
    const char* blurb;
    stg (*make)();
};

/// The single authoritative table of the embedded paper benchmarks (fig1,
/// lr, qmodule, lr_full, fig6, par, par_manual, mmu) -- the CLI's
/// `--corpus` / `--list-corpus` and the batch sweep both derive from it.
[[nodiscard]] const std::vector<corpus_entry>& corpus_table();

/// corpus_table() as named specs, in table order.  This is the corpus half
/// of an `asynth batch` sweep.
[[nodiscard]] std::vector<named_spec> corpus_specs();

/// Deterministic random series-parallel handshake specification with
/// @p n_leaves active channels triggered by one passive channel; always
/// expandable, consistent and speed-independent.
[[nodiscard]] stg random_handshake_spec(uint64_t seed, int n_leaves);

}  // namespace asynth::benchmarks
