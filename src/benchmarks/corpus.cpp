#include "benchmarks/corpus.hpp"

#include <utility>

#include "benchmarks/fragment_builder.hpp"
#include "petri/astg_io.hpp"
#include "util/hash.hpp"

namespace asynth::benchmarks {

stg fig1_controller() {
    // Signal order matches the paper's code vectors: (Ack, Req).
    return parse_astg(R"(.model fig1
.outputs Ack
.inputs Req
.graph
Ack+ pack
pa Req-
pack Req-
Req- Req+ Ack-
Req+ pa pe
pb Req+
Req- pb
Ack- pd
pd Ack+
pe Ack+
.marking { pa pd pe }
.end
)");
}

stg lr_process() {
    return parse_astg(R"(.model lr
.channels l r
.graph
l? r!
r! r?
r? l!
l! l?
.marking { <l!,l?> }
.end
)");
}

stg qmodule_lr() {
    return parse_astg(R"(.model qmodule
.inputs li ri
.outputs lo ro
.graph
li+ ro+
ro+ ri+
ri+ ro-
ro- ri-
ri- lo+
lo+ li-
li- lo-
lo- li+
.marking { <lo-,li+> }
.end
)");
}

stg lr_full_reduction() {
    return parse_astg(R"(.model lr_wires
.inputs li ri
.outputs lo ro
.graph
li+ ro+
ro+ ri+
ri+ lo+
lo+ li-
li- ro-
ro- ri-
ri- lo-
lo- li+
.marking { <lo-,li+> }
.end
)");
}

stg fig6_mixed() {
    return parse_astg(R"(.model fig6
.channels a
.outputs b c
.partial b
.graph
a! b+
b+ c+
c+ a?
a? c-
c- a!
.marking { <c-,a!> }
.end
)");
}

stg par_component() {
    return parse_astg(R"(.model par
.channels a b c
.graph
a? b! c!
b! b?
c! c?
b? a!
c? a!
a! a?
.marking { <a!,a?> }
.end
)");
}

stg par_manual() {
    return parse_astg(R"(.model par_manual
.inputs ai bi ci
.outputs ao bo co
.graph
ai+ bo+ co+
bo+ bi+
co+ ci+
bi+ ao+
ci+ ao+
ao+ ai-
ai- bo- co-
bo- bi-
co- ci-
bi- ao-
ci- ao-
ao- ai+
.marking { <ao-,ai+> }
.end
)");
}

stg mmu_controller() {
    return parse_astg(R"(.model mmu
.channels r l m b
.graph
r? l!
l! l?
l? m!
m! m?
m? b!
b! b?
b? r!
r! r?
.marking { <r!,r?> }
.end
)");
}

state_graph fig8_fragment() {
    enum : int32_t { A, B, C, D, E };
    std::vector<signal_decl> sigs = {
        {"a", signal_kind::output, false, false}, {"b", signal_kind::output, false, false},
        {"c", signal_kind::input, false, false},  {"d", signal_kind::input, false, false},
        {"e", signal_kind::input, false, false},
    };
    std::vector<sg_event> events;
    for (int32_t s = 0; s < 5; ++s) events.push_back(sg_event{s, edge::plus});
    auto code = [](std::initializer_list<int> set) {
        dyn_bitset c(5);
        for (int s : set) c.set(static_cast<std::size_t>(s));
        return c;
    };
    std::vector<sg_state> states = {
        {marking{}, code({})},           {marking{}, code({C})},
        {marking{}, code({C, B})},       {marking{}, code({C, B, D})},
        {marking{}, code({C, B, E})},    {marking{}, code({C, B, D, A})},
        {marking{}, code({C, A})},       {marking{}, code({C, A, B})},
        {marking{}, code({C, B, E, A})},
    };
    std::vector<sg_arc> arcs = {
        {0, 1, C}, {1, 6, A}, {1, 2, B}, {6, 7, B}, {2, 7, A}, {2, 3, D},
        {2, 4, E}, {7, 5, D}, {7, 8, E}, {3, 5, A}, {4, 8, A},
    };
    return state_graph::build(std::move(sigs), std::move(events), std::move(states),
                              std::move(arcs), 0);
}

namespace {

using detail::fragment;

/// Series-parallel body builder over channel "calls" (c! ; c?); composition
/// primitives shared with the random workload generator live in
/// fragment_builder.hpp.
struct sp_builder {
    stg net;
    int next_channel = 0;

    uint32_t new_channel() {
        return net.add_signal("c" + std::to_string(next_channel++), signal_kind::channel);
    }

    fragment leaf() { return detail::call_fragment(net, static_cast<int32_t>(new_channel())); }

    fragment seq(fragment a, fragment b) {
        return detail::seq_fragments(net, std::move(a), std::move(b));
    }

    fragment par(fragment a, fragment b) {
        return detail::par_fragments(std::move(a), std::move(b));
    }

    fragment random_tree(xorshift64& rng, int leaves) {
        if (leaves <= 1) return leaf();
        const int left = 1 + static_cast<int>(rng.next_below(static_cast<uint64_t>(leaves - 1)));
        auto a = random_tree(rng, left);
        auto b = random_tree(rng, leaves - left);
        return rng.next_bool() ? seq(std::move(a), std::move(b)) : par(std::move(a), std::move(b));
    }

    /// Wraps the body in a passive trigger channel t: t? ; body ; t! ; loop.
    stg finish(fragment body, std::string name) {
        return detail::finish_trigger(std::move(net), std::move(body), std::move(name));
    }
};

}  // namespace

stg random_handshake_spec(uint64_t seed, int n_leaves) {
    xorshift64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    sp_builder b;
    auto body = b.random_tree(rng, n_leaves);
    return b.finish(std::move(body), "rand_" + std::to_string(seed));
}

const std::vector<corpus_entry>& corpus_table() {
    static const std::vector<corpus_entry> table = {
        {"fig1", "Fig. 1 memory/processor controller (one CSC conflict)", fig1_controller},
        {"lr", "Fig. 2.c LR process (channel-level, needs expansion)", lr_process},
        {"qmodule", "Table 1 hand-made Q-module reshuffling of LR", qmodule_lr},
        {"lr_full", "Fig. 3.b fully reduced LR process (two wires)", lr_full_reduction},
        {"fig6", "Fig. 6.a mixed channel/partial/complete example", fig6_mixed},
        {"par", "Fig. 10.a Tangram PAR component", par_component},
        {"par_manual", "Fig. 10.c-style hand-designed PAR solution", par_manual},
        {"mmu", "Table 2 MMU-like controller (channels b, l, m, r)", mmu_controller},
    };
    return table;
}

std::vector<named_spec> corpus_specs() {
    std::vector<named_spec> out;
    out.reserve(corpus_table().size());
    for (const auto& e : corpus_table()) out.push_back({e.name, e.make()});
    return out;
}

std::vector<named_spec> spec_suite() {
    std::vector<named_spec> out;
    out.push_back({"lr", lr_process()});
    out.push_back({"par", par_component()});
    out.push_back({"mmu", mmu_controller()});
    out.push_back({"fig6", fig6_mixed()});
    {
        // seq3: three sequential calls.
        sp_builder b;
        auto f = b.seq(b.leaf(), b.seq(b.leaf(), b.leaf()));
        out.push_back({"seq3", b.finish(std::move(f), "seq3")});
    }
    {
        // fork3: three parallel calls.
        sp_builder b;
        auto f = b.par(b.leaf(), b.par(b.leaf(), b.leaf()));
        out.push_back({"fork3", b.finish(std::move(f), "fork3")});
    }
    {
        // diamond: a ; (b || c) ; d.
        sp_builder b;
        auto f = b.seq(b.leaf(), b.seq(b.par(b.leaf(), b.leaf()), b.leaf()));
        out.push_back({"diamond", b.finish(std::move(f), "diamond")});
    }
    {
        // wide2x2: (a ; b) || (c ; d).
        sp_builder b;
        auto f = b.par(b.seq(b.leaf(), b.leaf()), b.seq(b.leaf(), b.leaf()));
        out.push_back({"wide2x2", b.finish(std::move(f), "wide2x2")});
    }
    return out;
}

}  // namespace asynth::benchmarks
