#include "benchmarks/generate.hpp"

#include <algorithm>
#include <utility>

#include "benchmarks/fragment_builder.hpp"
#include "petri/astg_io.hpp"
#include "util/hash.hpp"

namespace asynth::benchmarks {

namespace {

// Composition primitives (fragment, call/seq/par, trigger wrapping) are the
// shared ones from fragment_builder.hpp; choice nodes below are normalised
// to single-entry/single-exit so fragments always compose safely with
// all-to-all implicit places.
using detail::fragment;

struct generator {
    stg net;
    xorshift64 rng;
    int next_call = 0;    // active call channels a0, a1, ...
    int next_guard = 0;   // passive select-guard channels s0, s1, ...
    int next_seq = 0;     // choice-bracketing sequencer channels q0, q1, ...
    int next_place = 0;   // explicit split/merge places
    const generator_options& opt;

    explicit generator(uint64_t seed, const generator_options& o)
        // Same seed-conditioning constant as random_handshake_spec so the two
        // generators never alias each other's streams.
        : rng(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL), opt(o) {}

    /// An active handshake call on a fresh channel: a! ; a?.
    fragment call(const char* prefix, int& counter) {
        auto c = static_cast<int32_t>(
            net.add_signal(prefix + std::to_string(counter++), signal_kind::channel));
        return detail::call_fragment(net, c);
    }

    fragment leaf() { return call("a", next_call); }

    fragment seq2(fragment a, fragment b) {
        return detail::seq_fragments(net, std::move(a), std::move(b));
    }

    fragment par2(fragment a, fragment b) {
        return detail::par_fragments(std::move(a), std::move(b));
    }

    /// Free-choice select over @p branches.  Each branch i is guarded by a
    /// fresh passive channel s_i (s_i? body_i s_i!): the environment requests
    /// exactly one guard, so the choice is input-resolved and the SG stays
    /// speed-independent.  The shared split place must receive exactly one
    /// token and the merge place must feed exactly one consumer, so the node
    /// is bracketed by two sequencer calls q_in / q_out, giving the fragment
    /// a plain single-entry/single-exit transition boundary.
    fragment choice(std::vector<fragment> branches) {
        fragment in = call("q", next_seq);
        fragment out = call("q", next_seq);
        uint32_t split = net.add_place("sel" + std::to_string(next_place) + "_split");
        uint32_t merge = net.add_place("sel" + std::to_string(next_place) + "_merge");
        ++next_place;
        net.add_arc_tp(in.exits.front(), split);
        net.add_arc_pt(merge, out.entries.front());
        for (auto& b : branches) {
            auto g = static_cast<int32_t>(
                net.add_signal("s" + std::to_string(next_guard++), signal_kind::channel));
            uint32_t open = net.add_transition({g, edge::recv, 0});
            uint32_t close = net.add_transition({g, edge::send, 0});
            net.add_arc_pt(split, open);
            for (uint32_t s : b.entries) net.connect(open, s);
            for (uint32_t e : b.exits) net.connect(e, close);
            net.add_arc_tp(close, merge);
        }
        return fragment{std::move(in.entries), std::move(out.exits)};
    }

    /// Splits @p total into exactly @p parts random shares (each >= 1).
    std::vector<int> split_into(int total, int parts) {
        std::vector<int> sizes(static_cast<std::size_t>(parts), 1);
        for (int extra = total - parts; extra > 0; --extra)
            ++sizes[rng.next_below(sizes.size())];
        return sizes;
    }

    /// Builds a body spending exactly @p budget channels, never exceeding
    /// @p width simultaneously active calls: a parallel node splits the
    /// width among its children, a sequence or choice hands the full width
    /// to each child (choice branches are alternatives, not concurrent).
    fragment body(int budget, int width) {
        if (budget <= 1) return leaf();
        int fanout = std::max(2, opt.max_fanout);

        // A k-branch select costs 2 sequencers + k guards on top of its
        // branch bodies (k channels minimum), so it needs budget >= 2 + 2k.
        if (budget >= 6 && rng.next_bool(opt.choice)) {
            int max_k = std::min(fanout, (budget - 2) / 2);
            int k = max_k <= 2 ? 2
                               : 2 + static_cast<int>(rng.next_below(
                                         static_cast<uint64_t>(max_k - 1)));
            auto shares = split_into(budget - 2 - k, k);
            std::vector<fragment> branches;
            branches.reserve(shares.size());
            for (int s : shares) branches.push_back(body(s, width));
            return choice(std::move(branches));
        }

        int parts = 2 + static_cast<int>(rng.next_below(static_cast<uint64_t>(fanout - 1)));
        parts = std::min(parts, budget);
        auto shares = split_into(budget, parts);
        bool parallel = width >= parts && rng.next_bool(opt.concurrency);
        std::vector<fragment> children;
        children.reserve(shares.size());
        for (std::size_t i = 0; i < shares.size(); ++i) {
            int child_width = width;
            if (parallel) {
                // Divide the width budget; the first children absorb the rest.
                child_width = width / parts + (static_cast<int>(i) < width % parts ? 1 : 0);
            }
            children.push_back(body(shares[i], child_width));
        }
        fragment acc = std::move(children.front());
        for (std::size_t i = 1; i < children.size(); ++i)
            acc = parallel ? par2(std::move(acc), std::move(children[i]))
                           : seq2(std::move(acc), std::move(children[i]));
        return acc;
    }

    /// Wraps the body in the passive trigger loop t? ; body ; t!.
    stg finish(fragment f, std::string name) {
        return detail::finish_trigger(std::move(net), std::move(f), std::move(name));
    }
};

}  // namespace

stg generate_stg(uint64_t seed, const generator_options& opt) {
    generator g(seed, opt);
    auto f = g.body(std::max(1, opt.size), std::max(1, opt.max_width));
    return g.finish(std::move(f),
                    "gen_s" + std::to_string(seed) + "_n" + std::to_string(std::max(1, opt.size)));
}

std::string generate_astg(uint64_t seed, const generator_options& opt) {
    return write_astg(generate_stg(seed, opt));
}

std::vector<named_spec> generate_workload(uint64_t first_seed, std::size_t count,
                                          const generator_options& opt) {
    std::vector<named_spec> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        stg net = generate_stg(first_seed + i, opt);
        std::string name = net.model_name;
        out.push_back({std::move(name), std::move(net)});
    }
    return out;
}

}  // namespace asynth::benchmarks
