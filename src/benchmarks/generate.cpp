#include "benchmarks/generate.hpp"

#include <algorithm>
#include <utility>

#include "benchmarks/fragment_builder.hpp"
#include "petri/astg_io.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace asynth::benchmarks {

void validate_generator_options(const generator_options& opt) {
    auto probability = [](double v, const char* knob) {
        // !(in range) also catches NaN.
        if (!(v >= 0.0 && v <= 1.0))
            throw error(std::string("generator: ") + knob +
                        " must be a probability in [0, 1], got " + std::to_string(v));
    };
    require(opt.size >= 1, "generator: size must be >= 1, got " + std::to_string(opt.size));
    require(opt.max_width >= 1,
            "generator: max_width must be >= 1, got " + std::to_string(opt.max_width));
    require(opt.max_fanout >= 2,
            "generator: max_fanout must be >= 2, got " + std::to_string(opt.max_fanout));
    probability(opt.concurrency, "concurrency");
    probability(opt.choice, "choice");
    probability(opt.arbitration, "arbitration");
    probability(opt.counter, "counter");
    require(opt.min_choice_ways >= 2, "generator: min_choice_ways must be >= 2, got " +
                                          std::to_string(opt.min_choice_ways));
    require(opt.min_choice_ways <= opt.max_fanout,
            "generator: min_choice_ways " + std::to_string(opt.min_choice_ways) +
                " exceeds max_fanout " + std::to_string(opt.max_fanout) +
                "; a select can never have that many branches");
    int select_cost = 2 + 2 * opt.min_choice_ways;  // 2 sequencers + k guards + k branches
    if (opt.choice >= 1.0 && opt.size < select_cost)
        throw error("generator: choice = 1 demands a select, but a " +
                    std::to_string(opt.min_choice_ways) + "-way select costs " +
                    std::to_string(select_cost) + " channels and size is only " +
                    std::to_string(opt.size));
    if (opt.choice > 0.0 && opt.min_choice_ways > 2 && opt.size < select_cost)
        throw error("generator: min_choice_ways " + std::to_string(opt.min_choice_ways) +
                    " needs size >= " + std::to_string(select_cost) +
                    " for any select to fit, got size " + std::to_string(opt.size));
    if (opt.arbitration > 0.0 && opt.size < 4)
        throw error(
            "generator: arbitration needs size >= 4 (two one-call branches plus two critical "
            "channels), got size " +
            std::to_string(opt.size));
    if (opt.arbitration > 0.0 && opt.max_width < 2)
        throw error(
            "generator: arbitration branches contend concurrently and need max_width >= 2, got "
            "max_width " +
            std::to_string(opt.max_width));
}

int spec_node::channels() const {
    switch (k) {
        case kind::call:
        case kind::counter:
            return 1;
        default:
            break;
    }
    int sum = 0;
    for (const auto& c : children) sum += c.channels();
    if (k == kind::choice) sum += 2 + static_cast<int>(children.size());
    if (k == kind::arbitration) sum += static_cast<int>(children.size());
    return sum;
}

bool spec_node::contains(kind kk) const {
    if (k == kk) return true;
    for (const auto& c : children)
        if (c.contains(kk)) return true;
    return false;
}

namespace {

using detail::fragment;
using node_kind = spec_node::kind;

// ---- layer 1: PRNG decisions -> spec_node tree ----------------------------
//
// The draw sequence for legacy options is load-bearing: BENCH_pipeline.json
// baselines and the pinned generator tests identify specs by (seed, options),
// so every draw the pre-recipe implementation made is preserved verbatim and
// every NEW knob short-circuits its draw away when disabled (the `opt.x > 0
// &&` guards below consume no PRNG state at the 0.0 defaults).
struct recipe_builder {
    xorshift64 rng;
    const generator_options& opt;

    explicit recipe_builder(uint64_t seed, const generator_options& o)
        // Same seed-conditioning constant as random_handshake_spec so the two
        // generators never alias each other's streams.
        : rng(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL), opt(o) {}

    /// Splits @p total into exactly @p parts random shares (each >= 1).
    std::vector<int> split_into(int total, int parts) {
        std::vector<int> sizes(static_cast<std::size_t>(parts), 1);
        for (int extra = total - parts; extra > 0; --extra)
            ++sizes[rng.next_below(sizes.size())];
        return sizes;
    }

    /// Picks a branch count in [kmin, max_k] (one draw unless forced).
    int pick_ways(int max_k, int kmin) {
        if (max_k <= kmin) return kmin;
        return kmin + static_cast<int>(rng.next_below(static_cast<uint64_t>(max_k - kmin + 1)));
    }

    /// Builds a tree spending exactly @p budget channels, never exceeding
    /// @p width simultaneously active calls: a parallel or arbitration node
    /// splits the width among its children, a sequence or choice hands the
    /// full width to each child (choice branches are alternatives, not
    /// concurrent).
    spec_node body(int budget, int width) {
        if (budget <= 1) {
            spec_node leaf;
            if (opt.counter > 0.0 && rng.next_bool(opt.counter)) {
                leaf.k = node_kind::counter;
                leaf.repeats = 2 + static_cast<int>(rng.next_below(3));  // 2..4 steps
            }
            return leaf;
        }
        int fanout = std::max(2, opt.max_fanout);
        int kmin = std::max(2, opt.min_choice_ways);

        // A k-way arbitration costs one critical channel per branch on top of
        // the k one-call-minimum branch bodies, so it needs budget >= 2k; its
        // branches contend concurrently, so it also needs width >= 2.
        if (opt.arbitration > 0.0 && budget >= 4 && width >= 2 && rng.next_bool(opt.arbitration)) {
            int max_k = std::min({fanout, budget / 2, width});
            int k = pick_ways(max_k, 2);
            auto shares = split_into(budget - k, k);
            spec_node n;
            n.k = node_kind::arbitration;
            n.children.reserve(shares.size());
            for (std::size_t i = 0; i < shares.size(); ++i) {
                int child_width = width / k + (static_cast<int>(i) < width % k ? 1 : 0);
                n.children.push_back(body(shares[i], child_width));
            }
            return n;
        }

        // A k-branch select costs 2 sequencers + k guards on top of its
        // branch bodies (k channels minimum), so it needs budget >= 2 + 2k.
        if (budget >= 2 + 2 * kmin && rng.next_bool(opt.choice)) {
            int max_k = std::min(fanout, (budget - 2) / 2);
            int k = pick_ways(max_k, kmin);
            auto shares = split_into(budget - 2 - k, k);
            spec_node n;
            n.k = node_kind::choice;
            n.children.reserve(shares.size());
            for (int s : shares) n.children.push_back(body(s, width));
            return n;
        }

        int parts = 2 + static_cast<int>(rng.next_below(static_cast<uint64_t>(fanout - 1)));
        parts = std::min(parts, budget);
        auto shares = split_into(budget, parts);
        bool parallel = width >= parts && rng.next_bool(opt.concurrency);
        spec_node n;
        n.k = parallel ? node_kind::parallel : node_kind::sequence;
        n.children.reserve(shares.size());
        for (std::size_t i = 0; i < shares.size(); ++i) {
            int child_width = width;
            if (parallel) {
                // Divide the width budget; the first children absorb the rest.
                child_width = width / parts + (static_cast<int>(i) < width % parts ? 1 : 0);
            }
            n.children.push_back(body(shares[i], child_width));
        }
        return n;
    }
};

// ---- layer 2: spec_node tree -> stg (pure, no PRNG) -----------------------

struct materializer {
    stg net;
    int next_call = 0;     // active call channels a0, a1, ...
    int next_counter = 0;  // counter channels c0, c1, ...
    int next_guard = 0;    // passive select-guard channels s0, s1, ...
    int next_seq = 0;      // choice-bracketing sequencer channels q0, q1, ...
    int next_mutex = 0;    // arbitration critical-section channels m0, m1, ...
    int next_place = 0;    // explicit select split/merge places
    int next_arb = 0;      // explicit arbitration mutex places

    /// An active handshake call on a fresh channel: c! ; c?.
    fragment call(const char* prefix, int& counter) {
        auto c = static_cast<int32_t>(
            net.add_signal(prefix + std::to_string(counter++), signal_kind::channel));
        return detail::call_fragment(net, c);
    }

    fragment seq2(fragment a, fragment b) {
        return detail::seq_fragments(net, std::move(a), std::move(b));
    }

    fragment par2(fragment a, fragment b) {
        return detail::par_fragments(std::move(a), std::move(b));
    }

    /// Free-choice select over @p branches.  Each branch i is guarded by a
    /// fresh passive channel s_i (s_i? body_i s_i!): the environment requests
    /// exactly one guard, so the choice is input-resolved and the SG stays
    /// speed-independent.  The shared split place must receive exactly one
    /// token and the merge place must feed exactly one consumer, so the node
    /// is bracketed by two sequencer calls q_in / q_out, giving the fragment
    /// a plain single-entry/single-exit transition boundary.
    fragment choice(std::vector<fragment> branches) {
        fragment in = call("q", next_seq);
        fragment out = call("q", next_seq);
        uint32_t split = net.add_place("sel" + std::to_string(next_place) + "_split");
        uint32_t merge = net.add_place("sel" + std::to_string(next_place) + "_merge");
        ++next_place;
        net.add_arc_tp(in.exits.front(), split);
        net.add_arc_pt(merge, out.entries.front());
        for (auto& b : branches) {
            auto g = static_cast<int32_t>(
                net.add_signal("s" + std::to_string(next_guard++), signal_kind::channel));
            uint32_t open = net.add_transition({g, edge::recv, 0});
            uint32_t close = net.add_transition({g, edge::send, 0});
            net.add_arc_pt(split, open);
            for (uint32_t s : b.entries) net.connect(open, s);
            for (uint32_t e : b.exits) net.connect(e, close);
            net.add_arc_tp(close, merge);
        }
        return fragment{std::move(in.entries), std::move(out.exits)};
    }

    /// Arbitrated mutual exclusion over @p bodies: each branch trails into a
    /// critical-section call on a private channel m_i, and all the m_i! send
    /// transitions consume from ONE shared marked mutex place (returned by
    /// m_i? on exit).  The place's consumers are output requests, so which
    /// branch enters first is resolved dynamically at run time -- a
    /// non-free-choice structure that is deliberately not speed-independent.
    fragment arbitration(std::vector<fragment> bodies) {
        uint32_t mutex = net.add_place("arb" + std::to_string(next_arb++) + "_mutex", 1);
        fragment acc;
        for (std::size_t i = 0; i < bodies.size(); ++i) {
            auto m = static_cast<int32_t>(
                net.add_signal("m" + std::to_string(next_mutex++), signal_kind::channel));
            fragment critical = detail::call_fragment(net, m);
            net.add_arc_pt(mutex, critical.entries.front());
            net.add_arc_tp(critical.exits.front(), mutex);
            fragment branch = seq2(std::move(bodies[i]), std::move(critical));
            acc = i == 0 ? std::move(branch) : par2(std::move(acc), std::move(branch));
        }
        return acc;
    }

    /// Children-first depth-first materialisation; the traversal order IS the
    /// channel naming order, so equal trees yield byte-identical nets.
    fragment build(const spec_node& n) {
        switch (n.k) {
            case node_kind::call:
                return call("a", next_call);
            case node_kind::counter: {
                auto c = static_cast<int32_t>(net.add_signal(
                    "c" + std::to_string(next_counter++), signal_kind::channel));
                return detail::counter_fragment(net, c, std::max(1, n.repeats));
            }
            case node_kind::choice:
            case node_kind::arbitration: {
                std::vector<fragment> branches;
                branches.reserve(n.children.size());
                for (const auto& c : n.children) branches.push_back(build(c));
                return n.k == node_kind::choice ? choice(std::move(branches))
                                                : arbitration(std::move(branches));
            }
            case node_kind::sequence:
            case node_kind::parallel: {
                std::vector<fragment> children;
                children.reserve(n.children.size());
                for (const auto& c : n.children) children.push_back(build(c));
                fragment acc = std::move(children.front());
                for (std::size_t i = 1; i < children.size(); ++i)
                    acc = n.k == node_kind::parallel ? par2(std::move(acc), std::move(children[i]))
                                                     : seq2(std::move(acc), std::move(children[i]));
                return acc;
            }
        }
        throw error("generator: unreachable spec_node kind");
    }
};

}  // namespace

spec_node generate_recipe(uint64_t seed, const generator_options& opt) {
    validate_generator_options(opt);
    recipe_builder b(seed, opt);
    return b.body(opt.size, opt.max_width);
}

stg build_spec(const spec_node& root, const std::string& name) {
    require(!(root.children.empty() && root.k != spec_node::kind::call &&
              root.k != spec_node::kind::counter),
            "generator: composite spec_node with no children");
    materializer m;
    auto f = m.build(root);
    return detail::finish_trigger(std::move(m.net), std::move(f), name);
}

stg generate_stg(uint64_t seed, const generator_options& opt) {
    spec_node root = generate_recipe(seed, opt);
    return build_spec(root,
                      "gen_s" + std::to_string(seed) + "_n" + std::to_string(opt.size));
}

std::string generate_astg(uint64_t seed, const generator_options& opt) {
    return write_astg(generate_stg(seed, opt));
}

std::vector<named_spec> generate_workload(uint64_t first_seed, std::size_t count,
                                          const generator_options& opt) {
    std::vector<named_spec> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        stg net = generate_stg(first_seed + i, opt);
        std::string name = net.model_name;
        out.push_back({std::move(name), std::move(net)});
    }
    return out;
}

}  // namespace asynth::benchmarks
