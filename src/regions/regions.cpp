#include "regions/regions.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "sg/analysis.hpp"

namespace asynth {

namespace {

/// Crossing profile of one event w.r.t. a state set.  A region requires full
/// uniformity per event: all arcs exit, or all arcs enter, or none cross.
struct crossing {
    bool inside = false;   // src in r, dst in r
    bool outside = false;  // src out, dst out
    bool exits = false;    // src in, dst out
    bool enters = false;   // src out, dst in
    [[nodiscard]] bool uniform() const noexcept {
        if (exits) return !enters && !inside && !outside;
        if (enters) return !exits && !inside && !outside;
        return true;
    }
};

struct split_event {
    uint16_t event = 0;       // base event id
    int32_t instance = 1;     // 1-based instance per (signal,dir)
    dyn_bitset es;            // excitation states of this component
    std::vector<uint32_t> arcs;  // arc ids labelled with this instance
};

struct synthesis_ctx {
    const state_graph* g = nullptr;
    std::vector<split_event> events;
    std::vector<int> arc_owner;  // arc id -> split event index
};

crossing profile(const synthesis_ctx& ctx, std::size_t ev, const dyn_bitset& r) {
    crossing c;
    for (uint32_t a : ctx.events[ev].arcs) {
        const auto& arc = ctx.g->arcs()[a];
        const bool s = r.test(arc.src), d = r.test(arc.dst);
        if (s && d) c.inside = true;
        else if (!s && !d) c.outside = true;
        else if (s && !d) c.exits = true;
        else c.enters = true;
    }
    return c;
}

bool region_ok(const synthesis_ctx& ctx, const dyn_bitset& r) {
    for (std::size_t ev = 0; ev < ctx.events.size(); ++ev)
        if (!profile(ctx, ev, r).uniform()) return false;
    return true;
}

/// Expands @p seed into all minimal legal regions (bounded search).
std::vector<dyn_bitset> minimal_regions_from(const synthesis_ctx& ctx, const dyn_bitset& seed,
                                             const region_options& opt, bool& exhausted) {
    std::vector<dyn_bitset> found;
    std::unordered_set<std::size_t> memo;
    std::deque<dyn_bitset> work{seed};
    std::size_t nodes = 0;
    exhausted = false;

    while (!work.empty()) {
        if (++nodes > opt.max_expansion_nodes) {
            exhausted = true;
            break;
        }
        dyn_bitset r = std::move(work.front());
        work.pop_front();
        if (!memo.insert(r.hash()).second) continue;

        // Find a violating event.
        std::size_t bad = ctx.events.size();
        crossing cbad;
        for (std::size_t ev = 0; ev < ctx.events.size(); ++ev) {
            crossing c = profile(ctx, ev, r);
            if (!c.uniform()) {
                bad = ev;
                cbad = c;
                break;
            }
        }
        if (bad == ctx.events.size()) {
            found.push_back(std::move(r));
            if (found.size() >= opt.max_regions) {
                exhausted = true;
                break;
            }
            continue;
        }

        // Branch on the legalisation moves for the violating event.
        const auto& arcs = ctx.events[bad].arcs;
        // Move 1: make the event non-crossing (absorb both ends of every
        // crossing arc).
        {
            dyn_bitset r1 = r;
            for (uint32_t a : arcs) {
                const auto& arc = ctx.g->arcs()[a];
                const bool s = r.test(arc.src), d = r.test(arc.dst);
                if (s && !d) r1.set(arc.dst);
                if (!s && d) r1.set(arc.src);
            }
            work.push_back(std::move(r1));
        }
        // Move 2: make it always-exit (only if nothing ends inside).
        if (!cbad.inside && !cbad.enters) {
            dyn_bitset r2 = r;
            bool feasible = true;
            for (uint32_t a : arcs) {
                const auto& arc = ctx.g->arcs()[a];
                if (!r.test(arc.src)) r2.set(arc.src);
                if (r.test(arc.dst)) feasible = false;
            }
            if (feasible) work.push_back(std::move(r2));
        }
        // Move 3: make it always-enter (only if nothing starts inside).
        if (!cbad.inside && !cbad.exits) {
            dyn_bitset r3 = r;
            bool feasible = true;
            for (uint32_t a : arcs) {
                const auto& arc = ctx.g->arcs()[a];
                if (!r.test(arc.dst)) r3.set(arc.dst);
                if (r.test(arc.src)) feasible = false;
            }
            if (feasible) work.push_back(std::move(r3));
        }
    }

    // Keep only minimal sets.
    std::vector<dyn_bitset> minimal;
    for (const auto& r : found) {
        bool dominated = false;
        for (const auto& q : found)
            if (!(q == r) && q.is_subset_of(r)) {
                dominated = true;
                break;
            }
        if (!dominated) minimal.push_back(r);
    }
    return minimal;
}

}  // namespace

bool is_region(const state_graph& g, const dyn_bitset& states) {
    synthesis_ctx ctx;
    ctx.g = &g;
    // One split event per (event, ER component) as in recovery.
    auto full = subgraph::full(g);
    for (uint16_t e = 0; e < g.events().size(); ++e) {
        auto comps = excitation_regions(full, e);
        for (std::size_t i = 0; i < comps.size(); ++i) {
            split_event se;
            se.event = e;
            se.instance = static_cast<int32_t>(i + 1);
            se.es = comps[i].states;
            for (uint32_t a = 0; a < g.arcs().size(); ++a)
                if (g.arcs()[a].event == e && comps[i].states.test(g.arcs()[a].src))
                    se.arcs.push_back(a);
            ctx.events.push_back(std::move(se));
        }
    }
    return region_ok(ctx, states);
}

recovery_result recover_stg(const subgraph& g) { return recover_stg(g, region_options{}); }

recovery_result recover_stg(const subgraph& view, const region_options& opt) {
    recovery_result res;
    state_graph g = view.materialize();
    auto full = subgraph::full(g);

    synthesis_ctx ctx;
    ctx.g = &g;
    for (uint16_t e = 0; e < g.events().size(); ++e) {
        auto comps = excitation_regions(full, e);
        for (std::size_t i = 0; i < comps.size(); ++i) {
            split_event se;
            se.event = e;
            se.instance = static_cast<int32_t>(i + 1);
            se.es = comps[i].states;
            for (uint32_t a = 0; a < g.arcs().size(); ++a)
                if (g.arcs()[a].event == e && comps[i].states.test(g.arcs()[a].src))
                    se.arcs.push_back(a);
            ctx.events.push_back(std::move(se));
        }
    }

    // Minimal pre-regions per split event; global cache of all regions found.
    std::vector<std::vector<dyn_bitset>> pre_regions(ctx.events.size());
    for (std::size_t ev = 0; ev < ctx.events.size(); ++ev) {
        bool exhausted = false;
        auto regions = minimal_regions_from(ctx, ctx.events[ev].es, opt, exhausted);
        if (regions.empty()) {
            res.message = "no region found for event " + g.event_name(ctx.events[ev].event) +
                          (exhausted ? " (budget exceeded)" : "");
            return res;
        }
        // Keep those the event actually exits.
        for (auto& r : regions) {
            crossing c = profile(ctx, ev, r);
            if (c.exits && !c.enters && !c.inside) pre_regions[ev].push_back(std::move(r));
        }
        if (pre_regions[ev].empty()) {
            res.message = "no pre-region for event " + g.event_name(ctx.events[ev].event);
            return res;
        }
        // Excitation closure.
        dyn_bitset inter(g.state_count(), true);
        for (const auto& r : pre_regions[ev]) inter &= r;
        if (!(inter == ctx.events[ev].es)) {
            res.message = "excitation closure fails for event " +
                          g.event_name(ctx.events[ev].event);
            return res;
        }
    }

    // Collect distinct regions as places.
    std::vector<dyn_bitset> places;
    auto intern_place = [&](const dyn_bitset& r) {
        for (std::size_t i = 0; i < places.size(); ++i)
            if (places[i] == r) return i;
        places.push_back(r);
        return places.size() - 1;
    };
    for (auto& prs : pre_regions)
        for (auto& r : prs) intern_place(r);
    res.regions_found = places.size();

    // Build the net.
    stg net;
    net.model_name = "recovered";
    for (const auto& s : g.signals()) {
        net.add_signal(s.name, s.kind, s.partial);
        net.signal_at(static_cast<uint32_t>(net.signal_count() - 1)).initial_value =
            s.initial_value;
    }
    std::vector<uint32_t> place_id(places.size());
    for (std::size_t p = 0; p < places.size(); ++p)
        place_id[p] = net.add_place("r" + std::to_string(p),
                                    places[p].test(g.initial()) ? 1 : 0);
    for (std::size_t ev = 0; ev < ctx.events.size(); ++ev) {
        const auto& base_ev = g.events()[ctx.events[ev].event];
        uint32_t t = net.add_transition(event_label{base_ev.signal, base_ev.dir, 0});
        for (std::size_t p = 0; p < places.size(); ++p) {
            crossing c = profile(ctx, ev, places[p]);
            if (c.exits) net.add_arc_pt(place_id[p], t);
            if (c.enters) net.add_arc_tp(t, place_id[p]);
        }
    }

    if (opt.verify_roundtrip) {
        try {
            auto regen = state_graph::generate(net);
            if (!lts_equivalent(subgraph::full(regen.graph), full, &res.message)) {
                res.message = "round-trip mismatch: " + res.message;
                return res;
            }
        } catch (const error& e) {
            res.message = std::string("round-trip generation failed: ") + e.what();
            return res;
        }
    }
    res.ok = true;
    res.net = std::move(net);
    return res;
}

}  // namespace asynth
