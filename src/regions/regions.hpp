// Region-based Petri-net synthesis: recovering an STG from a (reduced)
// state graph -- step 5 of the paper's Fig. 4 algorithm ("generate a new STG
// for the best reduced SG").  This is the classic theory of regions
// (Cortadella, Kishinevsky, Lavagno, Yakovlev: "Deriving Petri nets from
// finite transition systems"):
//
//  * a region is a set of states crossed uniformly by every event (each
//    event always enters, always exits, or never crosses);
//  * labels are split by excitation-region components up front (instances);
//  * for every event instance the minimal pre-regions are computed by
//    seed-and-expand with branching on the violating event;
//  * excitation closure (intersection of pre-regions = excitation set) is
//    verified, places are the minimal pre-regions, and the result is
//    round-trip checked: the recovered STG's SG must be language-equivalent
//    to the input.
#pragma once

#include <string>
#include <vector>

#include "petri/stg.hpp"
#include "sg/state_graph.hpp"

namespace asynth {

struct region_options {
    std::size_t max_expansion_nodes = 100000;  ///< branch budget per seed
    std::size_t max_regions = 2048;            ///< cap on minimal pre-regions kept
    bool verify_roundtrip = true;              ///< re-check language equivalence
};

/// Outcome of a recovery run.
struct recovery_result {
    bool ok = false;                ///< an equivalent STG was synthesised
    stg net;                        ///< the recovered net (valid iff ok)
    std::size_t regions_found = 0;  ///< minimal pre-regions discovered
    std::string message;            ///< diagnostic when !ok
};

/// Synthesises an STG whose reachability graph is language-equivalent to
/// @p g.  Fails (ok = false, diagnostic in message) when the SG is not
/// excitation-closed even after label splitting or a budget is exceeded.
[[nodiscard]] recovery_result recover_stg(const subgraph& g, const region_options& opt);
[[nodiscard]] recovery_result recover_stg(const subgraph& g);

/// True iff @p states is a region of the (materialised, full) SG.
[[nodiscard]] bool is_region(const state_graph& g, const dyn_bitset& states);

}  // namespace asynth
