#include "logic/synthesis.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "boolfn/incremental_cover.hpp"
#include "util/error.hpp"

namespace asynth {

double decomposed_area(const cover& c, const gate_library& lib) {
    if (c.cubes.empty()) return 0.0;  // constant 0
    std::size_t gates2 = 0;
    dyn_bitset inverted(c.nvars);
    for (const auto& q : c.cubes) {
        const std::size_t k = q.literal_count();
        if (k > 1) gates2 += k - 1;  // AND tree
        for (std::size_t v = 0; v < c.nvars; ++v)
            if (q.literal(v) < 0) inverted.set(v);
    }
    if (c.cubes.size() > 1) gates2 += c.cubes.size() - 1;  // OR tree
    return static_cast<double>(gates2) * lib.gate2 +
           static_cast<double>(inverted.count()) * lib.inverter;
}

nextstate_spec derive_nextstate(const subgraph& g, uint32_t signal) {
    const auto& b = g.base();
    const auto plus = b.find_event(static_cast<int32_t>(signal), edge::plus);
    const auto minus = b.find_event(static_cast<int32_t>(signal), edge::minus);

    nextstate_spec out;
    out.spec.nvars = b.signals().size();
    std::unordered_map<dyn_bitset, int> side;  // +1 on, -1 off, 0 conflict
    std::vector<dyn_bitset> order;             // stable iteration
    for (auto sv : g.live_states().ones()) {
        const auto s = static_cast<uint32_t>(sv);
        const bool value = b.states()[s].code.test(signal);
        const bool rising = plus && g.enabled(s, *plus);
        const bool falling = minus && g.enabled(s, *minus);
        const bool on = rising || (value && !falling);
        const auto& code = b.states()[s].code;
        auto [it, inserted] = side.emplace(code, on ? +1 : -1);
        if (inserted) {
            order.push_back(code);
        } else if (it->second != (on ? +1 : -1) && it->second != 0) {
            it->second = 0;
            out.conflicting.push_back(code);
        }
    }
    for (const auto& code : order) {
        const int s = side.at(code);
        if (s > 0) out.spec.on.push_back(code);
        else if (s < 0) out.spec.off.push_back(code);
    }
    return out;
}

namespace {

/// ON/OFF spec for the set (dir = plus) or reset (dir = minus) network of a
/// gC implementation: the network must be 1 exactly in the excitation region
/// of the transition; states where the signal already holds the target value
/// are don't-cares.
sop_spec gc_network_spec(const subgraph& g, uint32_t signal, edge dir) {
    const auto& b = g.base();
    sop_spec spec;
    spec.nvars = b.signals().size();
    const auto ev = b.find_event(static_cast<int32_t>(signal), dir);
    std::unordered_set<std::size_t> seen_on, seen_off;
    for (auto sv : g.live_states().ones()) {
        const auto s = static_cast<uint32_t>(sv);
        const auto& code = b.states()[s].code;
        const bool excited = ev && g.enabled(s, *ev);
        const bool value = code.test(signal);
        if (excited) {
            if (seen_on.insert(code.hash()).second) spec.on.push_back(code);
        } else if (value == (dir == edge::minus)) {
            // Quiescent at the source value of the transition: must not fire.
            if (seen_off.insert(code.hash()).second) spec.off.push_back(code);
        }
    }
    return spec;
}

cover minimize(const sop_spec& spec, bool exact) {
    return exact ? minimize_exact(spec) : minimize_heuristic(spec);
}

}  // namespace

synthesis_result synthesize(const subgraph& g) { return synthesize(g, synthesis_options{}); }

synthesis_result synthesize(const subgraph& g, const synthesis_options& opt) {
    synthesis_result res;
    const auto& b = g.base();
    std::vector<std::string> names;
    names.reserve(b.signals().size());
    for (const auto& s : b.signals()) names.push_back(s.name);

    for (const auto& ev : b.events())
        if (ev.dir == edge::toggle && b.signals()[static_cast<uint32_t>(ev.signal)].kind !=
                                           signal_kind::input) {
            res.message = "cannot synthesise 2-phase (toggle) signal '" +
                          b.signals()[static_cast<uint32_t>(ev.signal)].name +
                          "'; use a 4-phase refinement";
            return res;
        }

    for (uint32_t sig = 0; sig < b.signals().size(); ++sig) {
        const auto& decl = b.signals()[sig];
        if (decl.kind == signal_kind::input) continue;
        // Skip signals with no events at all (nothing to implement).
        if (!b.find_event(static_cast<int32_t>(sig), edge::plus) &&
            !b.find_event(static_cast<int32_t>(sig), edge::minus))
            continue;

        auto ns = derive_nextstate(g, sig);
        if (!ns.conflicting.empty()) {
            res.message = "CSC conflict on signal '" + decl.name + "' (" +
                          std::to_string(ns.conflicting.size()) +
                          " codes enable contradictory behaviour)";
            return res;
        }

        signal_impl impl;
        impl.signal = sig;
        if (opt.exact && opt.warm_cover) {
            ++res.warm_lookups;
            std::shared_ptr<const cover> warm = opt.warm_cover(ns.spec);
            if (warm) ++res.warm_hits;
            impl.function = minimize_exact(ns.spec, {}, nullptr, warm.get());
        } else {
            impl.function = minimize(ns.spec, opt.exact);
        }
        // The dominance bounds of boolfn/incremental_cover floor every valid
        // cover; cross-checking them against each synthesised function keeps
        // the search's pruning argument honest on every circuit the
        // Release-with-asserts sanitizer CI job builds.
        assert(bound_literals(ns.spec).lower <= impl.function.literal_count());

        // Classify.
        if (impl.function.cubes.empty()) {
            impl.kind = impl_kind::constant;
            impl.area = 0.0;
            impl.equation = decl.name + " = 0";
        } else if (impl.function.cubes.size() == 1 &&
                   impl.function.cubes[0].literal_count() == 0) {
            impl.kind = impl_kind::constant;
            impl.area = 0.0;
            impl.equation = decl.name + " = 1";
        } else if (impl.function.cubes.size() == 1 &&
                   impl.function.cubes[0].literal_count() == 1) {
            const auto& q = impl.function.cubes[0];
            std::size_t var = 0;
            for (std::size_t v = 0; v < q.nvars(); ++v)
                if (!q.is_dc(v)) var = v;
            if (q.literal(var) > 0 && var != sig) {
                impl.kind = impl_kind::wire;
                impl.area = 0.0;
            } else {
                impl.kind = impl_kind::inverter;
                impl.area = opt.lib.inverter;
            }
            impl.equation = decl.name + " = " + impl.function.to_string(names);
        } else {
            for (const auto& q : impl.function.cubes)
                if (!q.is_dc(sig)) impl.has_feedback = true;
            impl.area_complex = decomposed_area(impl.function, opt.lib);
            impl.set_fn = minimize(gc_network_spec(g, sig, edge::plus), opt.exact);
            impl.reset_fn = minimize(gc_network_spec(g, sig, edge::minus), opt.exact);
            impl.area_gc = decomposed_area(impl.set_fn, opt.lib) +
                           decomposed_area(impl.reset_fn, opt.lib) + opt.lib.celement;
            if (impl.area_gc < impl.area_complex) {
                impl.kind = impl_kind::gc_element;
                impl.area = impl.area_gc;
                impl.equation = decl.name + " = C(set: " + impl.set_fn.to_string(names) +
                                ", reset: " + impl.reset_fn.to_string(names) + ")";
            } else {
                impl.kind = impl_kind::complex_gate;
                impl.area = impl.area_complex;
                impl.equation = decl.name + " = " + impl.function.to_string(names);
            }
        }
        res.ckt.total_area += impl.area;
        res.ckt.impls.push_back(std::move(impl));
    }
    res.ok = true;
    return res;
}

}  // namespace asynth
