// Gate-level netlists: the 2-input decomposition behind the area model made
// explicit.  decompose_cover() turns a SOP cover into an AND/OR tree over
// 2-input gates with shared input inverters; evaluate() simulates the
// result, and the tests assert  evaluate(netlist, x) == cover.covers(x)
// for every point, plus area(netlist) == decomposed_area(cover).
#pragma once

#include <cstdint>
#include <vector>

#include "boolfn/cover.hpp"
#include "logic/synthesis.hpp"

namespace asynth {

enum class gate_kind : uint8_t {
    input_pin,  ///< primary input (variable reference)
    inverter,
    and2,
    or2,
};

struct gate {
    gate_kind kind = gate_kind::input_pin;
    int32_t a = -1;       ///< fan-in gate index (or variable index for pins)
    int32_t b = -1;       ///< second fan-in (and2/or2 only)
};

/// A single-output combinational netlist over n variables.
struct netlist {
    std::size_t nvars = 0;
    std::vector<gate> gates;
    int32_t output = -1;  ///< gate index of the output; -1 encodes constant 0,
                          ///< -2 encodes constant 1

    [[nodiscard]] bool evaluate(const dyn_bitset& point) const;
    /// Area under the library (pins are free; inverters/2-input gates paid).
    [[nodiscard]] double area(const gate_library& lib) const;
    [[nodiscard]] std::size_t gate_count() const;  ///< excluding input pins
};

/// Decomposes a cover into 2-input gates; inverters on input variables are
/// shared across cubes, mirroring decomposed_area().
[[nodiscard]] netlist decompose_cover(const cover& c);

}  // namespace asynth
