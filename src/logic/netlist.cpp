#include "logic/netlist.hpp"

#include <unordered_map>

#include "util/error.hpp"

namespace asynth {

bool netlist::evaluate(const dyn_bitset& point) const {
    if (output == -1) return false;
    if (output == -2) return true;
    std::vector<char> value(gates.size(), 0);
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const auto& g = gates[i];
        switch (g.kind) {
            case gate_kind::input_pin:
                value[i] = point.test(static_cast<std::size_t>(g.a));
                break;
            case gate_kind::inverter:
                value[i] = !value[static_cast<std::size_t>(g.a)];
                break;
            case gate_kind::and2:
                value[i] = value[static_cast<std::size_t>(g.a)] &&
                           value[static_cast<std::size_t>(g.b)];
                break;
            case gate_kind::or2:
                value[i] = value[static_cast<std::size_t>(g.a)] ||
                           value[static_cast<std::size_t>(g.b)];
                break;
        }
    }
    return value[static_cast<std::size_t>(output)];
}

double netlist::area(const gate_library& lib) const {
    double out = 0.0;
    for (const auto& g : gates) {
        switch (g.kind) {
            case gate_kind::input_pin: break;
            case gate_kind::inverter: out += lib.inverter; break;
            case gate_kind::and2:
            case gate_kind::or2: out += lib.gate2; break;
        }
    }
    return out;
}

std::size_t netlist::gate_count() const {
    std::size_t n = 0;
    for (const auto& g : gates)
        if (g.kind != gate_kind::input_pin) ++n;
    return n;
}

netlist decompose_cover(const cover& c) {
    netlist out;
    out.nvars = c.nvars;
    if (c.cubes.empty()) {
        out.output = -1;  // constant 0
        return out;
    }
    if (c.cubes.size() == 1 && c.cubes[0].literal_count() == 0) {
        out.output = -2;  // constant 1
        return out;
    }

    std::unordered_map<std::size_t, int32_t> pin_of, inv_of;
    auto pin = [&](std::size_t var) {
        auto [it, inserted] = pin_of.emplace(var, static_cast<int32_t>(out.gates.size()));
        if (inserted)
            out.gates.push_back(gate{gate_kind::input_pin, static_cast<int32_t>(var), -1});
        return it->second;
    };
    auto inverted = [&](std::size_t var) {
        auto [it, inserted] = inv_of.emplace(var, 0);
        if (inserted) {
            int32_t p = pin(var);
            it->second = static_cast<int32_t>(out.gates.size());
            out.gates.push_back(gate{gate_kind::inverter, p, -1});
        }
        return it->second;
    };

    std::vector<int32_t> products;
    for (const auto& q : c.cubes) {
        int32_t acc = -1;
        for (std::size_t v = 0; v < c.nvars; ++v) {
            const int l = q.literal(v);
            if (l == 0) continue;
            const int32_t leaf = (l > 0) ? pin(v) : inverted(v);
            if (acc < 0) {
                acc = leaf;
            } else {
                out.gates.push_back(gate{gate_kind::and2, acc, leaf});
                acc = static_cast<int32_t>(out.gates.size() - 1);
            }
        }
        require(acc >= 0, "decompose_cover: empty cube in a multi-cube cover");
        products.push_back(acc);
    }
    int32_t acc = products[0];
    for (std::size_t i = 1; i < products.size(); ++i) {
        out.gates.push_back(gate{gate_kind::or2, acc, products[i]});
        acc = static_cast<int32_t>(out.gates.size() - 1);
    }
    out.output = acc;
    return out;
}

}  // namespace asynth
