// Logic synthesis of speed-independent circuits from an encoded state graph
// (paper sections 3 and 8).  For every non-input signal x the next-state
// function is derived from the SG:
//
//   f_x(v(s)) = 1  iff  x+ is excited in s, or x = 1 and x- is not excited
//
// with the unreachable codes as don't-cares.  Requires CSC: if two reachable
// states share a code but disagree on f_x, synthesis fails and reports the
// offending signal (resolve with csc::solve first).
//
// Two implementation styles are produced:
//  * atomic complex gate: minimised SOP of f_x (may include feedback on x);
//  * generalized C element (gC): set/reset covers driving a C-element.
// Both are decomposed into 2-input gates + shared input inverters for the
// area model; special cases x = y (a wire, area 0) and x = y' (an inverter)
// are recognised -- the fully reduced LR process becomes two wires, area 0,
// exactly as in Table 1.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "boolfn/cover.hpp"
#include "sg/state_graph.hpp"

namespace asynth {

/// Area of each cell in abstract *area units* of the standard-cell library
/// used throughout the benches.  (Documented substitution: the paper's
/// library is unnamed; shapes, not absolute units, are the comparison
/// target.)
struct gate_library {
    double inverter = 4.0;   ///< inverter, area units
    double gate2 = 8.0;      ///< any 2-input AND/OR/NAND/NOR, area units
    double celement = 16.0;  ///< 2-input C-element, area units
};

enum class impl_kind : uint8_t {
    constant,      ///< f = 0 or f = 1
    wire,          ///< x = y, area 0
    inverter,      ///< x = y'
    complex_gate,  ///< atomic SOP gate (possibly with feedback)
    gc_element,    ///< C-element with set/reset networks
};

/// Implementation of one non-input signal.
struct signal_impl {
    uint32_t signal = 0;        ///< signal index in the SG's table
    impl_kind kind = impl_kind::complex_gate;  ///< winning implementation style
    cover function;             ///< complex-gate cover of f_x
    cover set_fn, reset_fn;     ///< gC covers
    bool has_feedback = false;  ///< f_x depends on x itself
    double area_complex = 0.0;  ///< complex-gate area, area units
    double area_gc = 0.0;       ///< gC area, area units
    double area = 0.0;          ///< min of the two styles, area units (0 for wires)
    std::string equation;       ///< printable equation of the chosen style
};

/// The synthesised circuit: one implementation per non-input signal.
struct circuit {
    std::vector<signal_impl> impls;  ///< per-signal implementations
    double total_area = 0.0;         ///< sum of impl areas, area units
    [[nodiscard]] const signal_impl* find(uint32_t signal) const {
        for (const auto& i : impls)
            if (i.signal == signal) return &i;
        return nullptr;
    }
};

struct synthesis_options {
    gate_library lib;
    bool exact = true;  ///< use the exact minimiser for final equations
    /// Optional warm-start source for the exact minimiser: given a signal's
    /// next-state spec, returns an already-minimised heuristic cover of the
    /// *same* spec (or null).  The pipeline wires this to the Fig. 9 search's
    /// literal_memo (keyed by explore::key_of_spec), closing the ROADMAP
    /// "logic re-enumerates from scratch" item: on a key match the exact
    /// set cover is seeded with the memoised cover instead of re-running the
    /// heuristic minimiser.  Results are unchanged -- the seed only prunes
    /// (see minimize_exact) and an invalid cover is ignored -- pinned by the
    /// cold-vs-warm equivalence test in tests/test_logic.cpp.  Ignored when
    /// !exact.
    std::function<std::shared_ptr<const cover>(const sop_spec&)> warm_cover;
};

struct synthesis_result {
    bool ok = false;
    std::string message;  ///< failure diagnostic (e.g. CSC conflict)
    circuit ckt;
    std::size_t warm_lookups = 0;  ///< warm_cover consultations (one per signal)
    std::size_t warm_hits = 0;     ///< consultations that returned a cover
};

[[nodiscard]] synthesis_result synthesize(const subgraph& g, const synthesis_options& opt);
[[nodiscard]] synthesis_result synthesize(const subgraph& g);

/// Area of a cover decomposed into 2-input gates plus shared inverters.
[[nodiscard]] double decomposed_area(const cover& c, const gate_library& lib);

/// The ON/OFF next-state specification of one signal; exposed for the cost
/// estimator and tests.  `conflicting` lists codes claimed by both sides
/// (empty iff the signal is CSC-consistent).
struct nextstate_spec {
    sop_spec spec;
    std::vector<dyn_bitset> conflicting;
};

[[nodiscard]] nextstate_spec derive_nextstate(const subgraph& g, uint32_t signal);

}  // namespace asynth
